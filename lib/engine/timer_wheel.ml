(* Hierarchical timer wheel: [levels] wheels of 64 slots each, slot
   granularity 64^l ns at level [l], so 11 levels cover the full 63-bit
   priority range.  Every queued node lives in the bucket given by its
   priority's level-l digit, where [l] is the highest 6-bit digit in
   which the priority differs from the wheel's lower bound [cur]; as
   [cur] advances into a bucket, the bucket cascades one level down.

   The resulting invariants carry all the correctness weight:

   - every queued priority is [>= cur];
   - at level 0 all nodes sit in the current 64 ns window, one exact
     priority per slot, at slots [>= cur land 63];
   - at level [l >= 1] all nodes share [cur]'s digits above [l] and sit
     in slots strictly beyond [cur]'s level-l digit (the slot [cur] is
     inside was emptied by the cascade that moved [cur] into it);
   - equal priorities always share one bucket: a bucket is a function of
     (prio, cur) only, so a later equal-priority insert lands where the
     earlier node already is, behind it.  Buckets append at the tail and
     cascades walk head-to-tail, so insertion-order FIFO is structural.

   {2 Arena layout}

   Storage is a struct-of-arrays arena: a node is an [int] index into
   parallel arrays ([prio]/[link_next]/[link_prev]/[meta], plus a
   [values] payload array), not a boxed record.  Indices
   [0 .. levels*64 - 1] are the bucket sentinels (sentinel of level [l],
   slot [s] is [l*64 + s]); dynamic nodes start right after and are
   recycled through an intrusive free list threaded through
   [link_next].  Cascades and pops therefore walk contiguous int arrays
   instead of chasing heap pointers, and the wheel performs zero GC
   allocation in steady state.

   A node's bookkeeping is packed into one [meta] word:

     bits 0..7   level + 2         (-2 = solo lane, -1 = free/idle)
     bit  8      queued
     bit  9      pinned            (caller owns the slot; never recycled)
     bits 10..39 generation stamp  (bumped when the slot is recycled)

   Handles are ints too: [index | stamp lsl 30].  A handle is valid only
   while its stamp matches the slot's current stamp, so a cancel racing
   a recycled slot is detected and safely refused — slot reuse can never
   cancel an innocent newer node.  Pinned nodes ({!insert}) keep their
   stamp for the lifetime of the wheel, which is what lets {!rearm}
   revive them arbitrarily often under one handle.

   Buckets are circular doubly-linked lists through a per-slot sentinel,
   which makes cancellation a true O(1) unlink — no dead nodes, no
   compaction, and a cancel-heavy workload (TCP timers under SYN flood)
   releases its payloads immediately.

   Each level also keeps a 64-bit occupancy bitmap (two 32-bit halves,
   since the OCaml int has 63 value bits) with one bit per non-empty
   bucket.  Extraction finds the next busy slot with a find-first-set
   instead of walking up to 64 empty sentinels — this is what closes the
   wheel-vs-heap gap on sparse periodic workloads, where a lone timer
   used to pay a full-window scan per tick. *)

let bits = 6
let slot_count = 64
let levels = 11 (* 11 * 6 = 66 bits >= the 62 of max_int *)
let nsent = levels * slot_count (* arena indices below this are sentinels *)
let mask = slot_count - 1

(* meta word accessors *)
let m_queued = 0x100
let m_pinned = 0x200
let lvl_of m = (m land 0xff) - 2
let queued m = m land m_queued <> 0
let pinned m = m land m_pinned <> 0
let stamp_of m = (m lsr 10) land 0x3FFFFFFF

(* handle = index | stamp lsl 30; both fields 30 bits wide *)
let h_idx h = h land 0x3FFFFFFF
let h_stamp h = (h lsr 30) land 0x3FFFFFFF
let mk_handle i stamp = i lor (stamp lsl 30)

type 'a handle = int

type 'a t = {
  mutable prio : int array;
  mutable link_next : int array;
  mutable link_prev : int array;
  mutable meta : int array;
  mutable values : 'a array;
  counts : int array; (* queued nodes per level *)
  occ : int array; (* [levels*2] occupancy: slots 0-31 at [2l], 32-63 at [2l+1] *)
  mutable live : int;
  mutable cur : int; (* lower bound on every queued priority *)
  mutable solo : int; (* when [live = 1]: the queued node, held OUT of the buckets; -1 = none *)
  mutable free : int; (* free list of recyclable nodes, chained by [link_next]; -1 = end *)
  mutable used : int; (* high-water mark: indices >= this were never allocated *)
}

(* Solo fast lane: while exactly one node is queued it lives in [solo]
   and in no bucket (lvl = -2, counts and occupancy untouched), so the
   pop/re-arm cycle of a lone periodic timer — the steady state of a
   scheduler quantum or sweep timer — is a handful of stores, no digit
   arithmetic, no sentinel traffic.  A second insert first demotes the
   solo node into its proper bucket (its priority is >= cur, so [place]
   is valid), preserving FIFO order for equal priorities because the
   earlier node is placed first. *)

(* The payload of a free or sentinel slot is never read; the immediate 0
   keeps the values array from pinning popped payloads. *)
let dummy () : 'a = Obj.magic 0

let initial_cap = nsent + 256

let create () =
  {
    (* every slot starts self-linked; sentinels stay that way until used *)
    prio = Array.make initial_cap min_int;
    link_next = Array.init initial_cap (fun i -> i);
    link_prev = Array.init initial_cap (fun i -> i);
    meta = Array.make initial_cap 0;
    values = Array.make initial_cap (dummy ());
    counts = Array.make levels 0;
    occ = Array.make (levels * 2) 0;
    live = 0;
    cur = 0;
    solo = -1;
    free = -1;
    used = nsent;
  }

let length t = t.live
let is_empty t = t.live = 0
let lower_bound t = t.cur

let grow t =
  let cap = Array.length t.prio in
  let ncap = cap * 2 in
  let gi a =
    let n = Array.make ncap 0 in
    Array.blit a 0 n 0 cap;
    n
  in
  t.prio <- gi t.prio;
  t.link_next <- gi t.link_next;
  t.link_prev <- gi t.link_prev;
  t.meta <- gi t.meta;
  let nv = Array.make ncap (dummy ()) in
  Array.blit t.values 0 nv 0 cap;
  t.values <- nv

(* Take a slot off the free list (or extend the high-water mark), keep
   its generation stamp, and initialise it queued at level 0. *)
let alloc_node t ~prio ~value ~pin =
  let i =
    if t.free >= 0 then begin
      let i = t.free in
      t.free <- t.link_next.(i);
      i
    end
    else begin
      if t.used = Array.length t.prio then grow t;
      let i = t.used in
      t.used <- i + 1;
      i
    end
  in
  t.prio.(i) <- prio;
  t.values.(i) <- value;
  t.link_next.(i) <- i;
  t.link_prev.(i) <- i;
  t.meta.(i) <- (t.meta.(i) land lnot 0x3ff) lor m_queued lor (if pin then m_pinned else 0) lor 2;
  i

(* Recycle a slot: drop the payload, bump the generation stamp (which
   invalidates every outstanding handle onto it) and push it on the free
   list. *)
let free_node t i =
  t.values.(i) <- dummy ();
  t.meta.(i) <- ((stamp_of t.meta.(i) + 1) land 0x3FFFFFFF) lsl 10;
  t.link_next.(i) <- t.free;
  t.free <- i

let append t sentinel i =
  let tail = t.link_prev.(sentinel) in
  t.link_prev.(i) <- tail;
  t.link_next.(i) <- sentinel;
  t.link_next.(tail) <- i;
  t.link_prev.(sentinel) <- i

let unlink t i =
  let p = t.link_prev.(i) and n = t.link_next.(i) in
  t.link_next.(p) <- n;
  t.link_prev.(n) <- p;
  t.link_prev.(i) <- i;
  t.link_next.(i) <- i

(* {2 Occupancy bitmaps} *)

let occ_set t lvl slot =
  let i = (lvl lsl 1) + (slot lsr 5) in
  t.occ.(i) <- t.occ.(i) lor (1 lsl (slot land 31))

let occ_clear t lvl slot =
  let i = (lvl lsl 1) + (slot lsr 5) in
  t.occ.(i) <- t.occ.(i) land lnot (1 lsl (slot land 31))

(* Index of the lowest set bit of a non-zero 32-bit word, by de Bruijn
   multiplication (Leiserson/Prokop/Randall). *)
let debruijn_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ntz32 x = debruijn_table.(((x land -x) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* Smallest occupied slot [>= from] at [lvl], or [slot_count] if none. *)
let first_occupied t lvl ~from =
  if from >= slot_count then slot_count
  else begin
    let hi = t.occ.((lvl lsl 1) + 1) in
    if from < 32 then begin
      let lo = t.occ.(lvl lsl 1) land lnot ((1 lsl from) - 1) in
      if lo <> 0 then ntz32 lo else if hi <> 0 then 32 + ntz32 hi else slot_count
    end
    else begin
      let hi = hi land lnot ((1 lsl (from - 32)) - 1) in
      if hi <> 0 then 32 + ntz32 hi else slot_count
    end
  end

let rec level_of_diff l d = if d < slot_count then l else level_of_diff (l + 1) (d lsr bits)

let place t i =
  let prio = t.prio.(i) in
  let lvl = level_of_diff 0 (prio lxor t.cur) in
  let slot = (prio lsr (bits * lvl)) land mask in
  t.meta.(i) <- (t.meta.(i) land lnot 0xff) lor (lvl + 2);
  append t ((lvl lsl bits) lor slot) i;
  occ_set t lvl slot;
  t.counts.(lvl) <- t.counts.(lvl) + 1

(* Unlink a queued node and keep counts and occupancy honest; the slot is
   recomputed from the node's own (prio, lvl), which [unlink] preserves. *)
let remove t i =
  let lvl = lvl_of t.meta.(i) in
  let slot = (t.prio.(i) lsr (bits * lvl)) land mask in
  unlink t i;
  t.counts.(lvl) <- t.counts.(lvl) - 1;
  let sentinel = (lvl lsl bits) lor slot in
  if t.link_next.(sentinel) = sentinel then occ_clear t lvl slot

let enqueue_node t i =
  if t.live = 0 then begin
    t.meta.(i) <- t.meta.(i) land lnot 0xff; (* lvl2 = 0, i.e. lvl = -2 *)
    t.solo <- i
  end
  else begin
    if t.solo >= 0 then begin
      place t t.solo;
      t.solo <- -1
    end;
    place t i
  end;
  t.live <- t.live + 1

let insert t ~prio value =
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.insert: priority %d below lower bound %d" prio t.cur);
  let i = alloc_node t ~prio ~value ~pin:true in
  enqueue_node t i;
  mk_handle i (stamp_of t.meta.(i))

(* Cancellable fire-once insertion: like {!insert} the caller gets a
   handle, but the slot recycles the moment the node pops or the cancel
   lands — the generation stamp makes the dangling handle inert. *)
let insert_oneshot t ~prio value =
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.insert_oneshot: priority %d below lower bound %d" prio t.cur);
  let i = alloc_node t ~prio ~value ~pin:false in
  enqueue_node t i;
  mk_handle i (stamp_of t.meta.(i))

let rearm t h ~prio =
  let i = h_idx h in
  if i < nsent || i >= t.used || h_stamp h <> stamp_of t.meta.(i) then
    invalid_arg "Timer_wheel.rearm: stale handle (node was recycled)";
  if queued t.meta.(i) then invalid_arg "Timer_wheel.rearm: node is still queued";
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.rearm: priority %d below lower bound %d" prio t.cur);
  t.prio.(i) <- prio;
  t.meta.(i) <- t.meta.(i) lor m_queued;
  enqueue_node t i

(* Fire-and-forget insertion: the node never escapes the wheel, so there
   is nothing to cancel and the node can be recycled through the free list
   the moment it is popped.  This is what makes the simulator's internal
   one-shot events (scheduler kicks, packet delivery, think-time wakeups —
   the bulk of all events) allocation-free in steady state. *)
let insert_pooled t ~prio value =
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.insert_pooled: priority %d below lower bound %d" prio t.cur);
  let i = alloc_node t ~prio ~value ~pin:false in
  enqueue_node t i

let cancel t h =
  let i = h_idx h in
  if i < nsent || i >= t.used then false
  else begin
    let m = t.meta.(i) in
    if h_stamp h <> stamp_of m || not (queued m) then false
    else begin
      t.meta.(i) <- m land lnot m_queued;
      if i = t.solo then t.solo <- -1 else remove t i;
      t.live <- t.live - 1;
      if not (pinned m) then free_node t i;
      true
    end
  end

(* Move every node of a cascading bucket down; [t.cur] has just advanced
   to the bucket's window start, so [place] lands each node at a strictly
   lower level, head-to-tail order preserved by tail-append. *)
let rec cascade_drain t sentinel lvl =
  let i = t.link_next.(sentinel) in
  if i <> sentinel then begin
    unlink t i;
    t.counts.(lvl) <- t.counts.(lvl) - 1;
    place t i;
    cascade_drain t sentinel lvl
  end

let cascade t sentinel lvl slot =
  cascade_drain t sentinel lvl;
  occ_clear t lvl slot

(* Pop bookkeeping shared by every extraction path: mark unqueued,
   capture the payload, recycle the slot unless the caller pinned it. *)
let take_payload t i =
  let m = t.meta.(i) in
  t.meta.(i) <- m land lnot m_queued;
  let v = t.values.(i) in
  if not (pinned m) then free_node t i;
  v

(* Extract the minimum-priority node with priority <= horizon, advancing
   [cur] no further than [min next-priority horizon]; [commit] decides
   whether an empty wheel pins [cur] to the horizon. *)
let rec extract t ~horizon ~commit =
  if t.live = 0 then begin
    if commit && horizon > t.cur then t.cur <- horizon;
    None
  end
  else if t.solo >= 0 then begin
    (* The lone queued node lives outside the buckets, so this branch is
       the whole story: pop it, or commit [cur] toward the horizon —
       which is safe without any digit reasoning precisely because no
       bucket placement depends on [cur] right now. *)
    let i = t.solo in
    let prio = t.prio.(i) in
    if prio > horizon then begin
      if horizon > t.cur then t.cur <- horizon;
      None
    end
    else begin
      t.live <- 0;
      t.solo <- -1;
      t.cur <- prio;
      Some (prio, take_payload t i)
    end
  end
  else if t.counts.(0) > 0 then begin
    (* Level 0: the first busy slot at or after cur's slot holds exactly
       the next priority, in FIFO order. *)
    let s = first_occupied t 0 ~from:(t.cur land mask) in
    if s = slot_count then invalid_arg "Timer_wheel: inconsistent level-0 count"
    else begin
      let i = t.link_next.(s) in
      let prio = t.prio.(i) in
      if prio > horizon then begin
        if horizon > t.cur then t.cur <- horizon;
        None
      end
      else begin
        remove t i;
        t.live <- t.live - 1;
        t.cur <- prio;
        Some (prio, take_payload t i)
      end
    end
  end
  else scan_levels t ~horizon ~commit 1

(* Levels >= 1: find the next busy bucket beyond cur's digit, cascade it,
   and retry from level 0.  [t.live > 0] guarantees some level is busy. *)
and scan_levels t ~horizon ~commit lvl =
  if lvl >= levels then begin
    (* Unreachable while the level counts agree with [live]; fail loudly
       rather than spin if they ever do not. *)
    invalid_arg "Timer_wheel: inconsistent level counts"
  end
  else if t.counts.(lvl) = 0 then scan_levels t ~horizon ~commit (lvl + 1)
  else begin
    let shift = bits * lvl in
    let j = first_occupied t lvl ~from:(((t.cur lsr shift) land mask) + 1) in
    if j = slot_count then scan_levels t ~horizon ~commit (lvl + 1)
    else begin
      (* Window start of the found bucket: cur's digits above [lvl],
         digit [lvl] = j, zeros below.  At the top level there are no
         digits above — and shifting by [shift + bits > 63] would be
         unspecified, so that case must short-circuit. *)
      let above =
        (* [lsl]/[lsr] are right-associative, so the rounding-down needs
           explicit parens; and a shift amount > 62 is unspecified, so the
           top level (which has no digits above it) must short-circuit. *)
        let top = shift + bits in
        if top > 62 then 0 else (t.cur lsr top) lsl top
      in
      let bucket_start = above lor (j lsl shift) in
      if bucket_start > horizon then begin
        if horizon > t.cur then t.cur <- horizon;
        None
      end
      else begin
        let sentinel = (lvl lsl bits) lor j in
        let i = t.link_next.(sentinel) in
        if t.link_next.(i) = sentinel && t.prio.(i) <= horizon then begin
          (* Single-occupant bucket.  The first busy bucket at the lowest
             busy level holds the wheel's minimum (lower levels share
             [cur]'s digits above them, so they sort first; equal
             priorities always share a bucket), so a lone occupant IS the
             global minimum: pop it here and skip the cascade staircase
             entirely.  [cur] jumps straight to [node.prio], which keeps
             every other node's bucket valid — the digits above [lvl] are
             unchanged and the level-[lvl] digit advances exactly to [j],
             which this pop empties.  This is what makes a lone periodic
             timer O(1)-cheap per tick instead of one cascade per level. *)
          let prio = t.prio.(i) in
          unlink t i;
          t.counts.(lvl) <- t.counts.(lvl) - 1;
          occ_clear t lvl j;
          t.live <- t.live - 1;
          t.cur <- prio;
          Some (prio, take_payload t i)
        end
        else begin
          t.cur <- bucket_start;
          cascade t sentinel lvl j;
          extract t ~horizon ~commit
        end
      end
    end
  end

let pop_min t = extract t ~horizon:max_int ~commit:false
let pop_min_until t ~horizon = extract t ~horizon ~commit:true

let clear t =
  (* Unqueue every allocated node; non-pinned slots recycle, pinned ones
     stay owned by their handle (still rearm-able, as after a pop). *)
  for i = nsent to t.used - 1 do
    let m = t.meta.(i) in
    if queued m then begin
      t.meta.(i) <- m land lnot m_queued;
      if not (pinned m) then free_node t i
    end
  done;
  for s = 0 to nsent - 1 do
    t.link_next.(s) <- s;
    t.link_prev.(s) <- s
  done;
  Array.fill t.counts 0 levels 0;
  Array.fill t.occ 0 (levels * 2) 0;
  t.solo <- -1;
  t.live <- 0
