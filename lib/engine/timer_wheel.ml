(* Hierarchical timer wheel: [levels] wheels of 64 slots each, slot
   granularity 64^l ns at level [l], so 11 levels cover the full 63-bit
   priority range.  Every queued node lives in the bucket given by its
   priority's level-l digit, where [l] is the highest 6-bit digit in
   which the priority differs from the wheel's lower bound [cur]; as
   [cur] advances into a bucket, the bucket cascades one level down.

   The resulting invariants carry all the correctness weight:

   - every queued priority is [>= cur];
   - at level 0 all nodes sit in the current 64 ns window, one exact
     priority per slot, at slots [>= cur land 63];
   - at level [l >= 1] all nodes share [cur]'s digits above [l] and sit
     in slots strictly beyond [cur]'s level-l digit (the slot [cur] is
     inside was emptied by the cascade that moved [cur] into it);
   - equal priorities always share one bucket: a bucket is a function of
     (prio, cur) only, so a later equal-priority insert lands where the
     earlier node already is, behind it.  Buckets append at the tail and
     cascades walk head-to-tail, so insertion-order FIFO is structural.

   Buckets are circular doubly-linked lists through a per-slot sentinel,
   which makes cancellation a true O(1) unlink — no dead nodes, no
   compaction, and a cancel-heavy workload (TCP timers under SYN flood)
   releases its payloads immediately.

   Each level also keeps a 64-bit occupancy bitmap (two 32-bit halves,
   since the OCaml int has 63 value bits) with one bit per non-empty
   bucket.  Extraction finds the next busy slot with a find-first-set
   instead of walking up to 64 empty sentinels — this is what closes the
   wheel-vs-heap gap on sparse periodic workloads, where a lone timer
   used to pay a full-window scan per tick. *)

type 'a node = {
  mutable prio : int; (* mutable so [rearm] can reuse the node *)
  mutable value : 'a; (* mutable so pooled nodes can be recycled *)
  pooled : bool; (* no handle outside the wheel: free-list it after the pop *)
  mutable lvl : int; (* current level, for the per-level count *)
  mutable queued : bool;
  mutable prev : 'a node;
  mutable next : 'a node;
}

type 'a handle = 'a node

let bits = 6
let slot_count = 64
let levels = 11 (* 11 * 6 = 66 bits >= the 62 of max_int *)

type 'a t = {
  slots : 'a node array array; (* [levels][slot_count] sentinels *)
  counts : int array; (* queued nodes per level *)
  occ : int array; (* [levels*2] occupancy: slots 0-31 at [2l], 32-63 at [2l+1] *)
  mutable live : int;
  mutable cur : int; (* lower bound on every queued priority *)
  nil : 'a node; (* dummy marking [solo] as absent *)
  mutable solo : 'a node; (* when [live = 1]: the queued node, held OUT of the buckets *)
  mutable free : 'a node; (* free list of recyclable pooled nodes, chained by [next] *)
}

(* Solo fast lane: while exactly one node is queued it lives in [solo]
   and in no bucket (lvl = -2, counts and occupancy untouched), so the
   pop/re-arm cycle of a lone periodic timer — the steady state of a
   scheduler quantum or sweep timer — is a handful of stores, no digit
   arithmetic, no sentinel traffic.  A second insert first demotes the
   solo node into its proper bucket (its priority is >= cur, so [place]
   is valid), preserving FIFO order for equal priorities because the
   earlier node is placed first. *)

(* The sentinel's [value] is never read; the immediate 0 keeps the slot
   array from pinning popped payloads. *)
let make_sentinel () : 'a node =
  let rec s =
    { prio = min_int; value = Obj.magic 0; pooled = false; lvl = -1; queued = false;
      prev = s; next = s }
  in
  s

let create () =
  let nil = make_sentinel () in
  {
    slots = Array.init levels (fun _ -> Array.init slot_count (fun _ -> make_sentinel ()));
    counts = Array.make levels 0;
    occ = Array.make (levels * 2) 0;
    live = 0;
    cur = 0;
    nil;
    solo = nil;
    free = nil;
  }

let length t = t.live
let is_empty t = t.live = 0
let lower_bound t = t.cur

let append sentinel node =
  let tail = sentinel.prev in
  node.prev <- tail;
  node.next <- sentinel;
  tail.next <- node;
  sentinel.prev <- node

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev;
  node.prev <- node;
  node.next <- node

(* {2 Occupancy bitmaps} *)

let occ_set t lvl slot =
  let i = (lvl lsl 1) + (slot lsr 5) in
  t.occ.(i) <- t.occ.(i) lor (1 lsl (slot land 31))

let occ_clear t lvl slot =
  let i = (lvl lsl 1) + (slot lsr 5) in
  t.occ.(i) <- t.occ.(i) land lnot (1 lsl (slot land 31))

(* Index of the lowest set bit of a non-zero 32-bit word, by de Bruijn
   multiplication (Leiserson/Prokop/Randall). *)
let debruijn_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ntz32 x = debruijn_table.(((x land -x) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

(* Smallest occupied slot [>= from] at [lvl], or [slot_count] if none. *)
let first_occupied t lvl ~from =
  if from >= slot_count then slot_count
  else begin
    let hi = t.occ.((lvl lsl 1) + 1) in
    if from < 32 then begin
      let lo = t.occ.(lvl lsl 1) land lnot ((1 lsl from) - 1) in
      if lo <> 0 then ntz32 lo else if hi <> 0 then 32 + ntz32 hi else slot_count
    end
    else begin
      let hi = hi land lnot ((1 lsl (from - 32)) - 1) in
      if hi <> 0 then 32 + ntz32 hi else slot_count
    end
  end

let rec level_of_diff l d = if d < slot_count then l else level_of_diff (l + 1) (d lsr bits)

let place t node =
  let lvl = level_of_diff 0 (node.prio lxor t.cur) in
  let slot = (node.prio lsr (bits * lvl)) land (slot_count - 1) in
  node.lvl <- lvl;
  append t.slots.(lvl).(slot) node;
  occ_set t lvl slot;
  t.counts.(lvl) <- t.counts.(lvl) + 1

(* Unlink a queued node and keep counts and occupancy honest; the slot is
   recomputed from the node's own (prio, lvl), which [unlink] preserves. *)
let remove t node =
  let lvl = node.lvl in
  let slot = (node.prio lsr (bits * lvl)) land (slot_count - 1) in
  unlink node;
  t.counts.(lvl) <- t.counts.(lvl) - 1;
  let sentinel = t.slots.(lvl).(slot) in
  if sentinel.next == sentinel then occ_clear t lvl slot

let enqueue_node t node =
  if t.live = 0 then begin
    node.lvl <- -2;
    t.solo <- node
  end
  else begin
    if t.solo != t.nil then begin
      place t t.solo;
      t.solo <- t.nil
    end;
    place t node
  end;
  t.live <- t.live + 1

let insert t ~prio value =
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.insert: priority %d below lower bound %d" prio t.cur);
  let rec node =
    { prio; value; pooled = false; lvl = 0; queued = true; prev = node; next = node }
  in
  enqueue_node t node;
  node

let rearm t node ~prio =
  if node.queued then invalid_arg "Timer_wheel.rearm: node is still queued";
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.rearm: priority %d below lower bound %d" prio t.cur);
  node.prio <- prio;
  node.queued <- true;
  enqueue_node t node

(* Fire-and-forget insertion: the node never escapes the wheel, so there
   is nothing to cancel and the node can be recycled through the free list
   the moment it is popped.  This is what makes the simulator's internal
   one-shot events (scheduler kicks, packet delivery, think-time wakeups —
   the bulk of all events) allocation-free in steady state. *)
let insert_pooled t ~prio value =
  if prio < t.cur then
    invalid_arg
      (Printf.sprintf "Timer_wheel.insert_pooled: priority %d below lower bound %d" prio t.cur);
  let node =
    if t.free != t.nil then begin
      let node = t.free in
      t.free <- node.next;
      node.prev <- node;
      node.next <- node;
      node.prio <- prio;
      node.value <- value;
      node.queued <- true;
      node
    end
    else
      let rec node =
        { prio; value; pooled = true; lvl = 0; queued = true; prev = node; next = node }
      in
      node
  in
  enqueue_node t node

(* Popped pooled nodes go back on the free list; the value is dropped so
   the list pins no payloads. *)
let recycle t node =
  if node.pooled then begin
    node.value <- Obj.magic 0;
    node.next <- t.free;
    t.free <- node
  end

let cancel t node =
  if node.queued then begin
    node.queued <- false;
    if node == t.solo then t.solo <- t.nil else remove t node;
    t.live <- t.live - 1;
    true
  end
  else false

(* Move every node of a cascading bucket down; [t.cur] has just advanced
   to the bucket's window start, so [place] lands each node at a strictly
   lower level, head-to-tail order preserved by tail-append.  A top-level
   loop rather than a local [let rec]: a closure here would be the only
   allocation on the steady-state periodic path. *)
let rec cascade_drain t sentinel lvl =
  let node = sentinel.next in
  if node != sentinel then begin
    unlink node;
    t.counts.(lvl) <- t.counts.(lvl) - 1;
    place t node;
    cascade_drain t sentinel lvl
  end

let cascade t sentinel lvl slot =
  cascade_drain t sentinel lvl;
  occ_clear t lvl slot

let mask = slot_count - 1

(* Extract the minimum-priority node with priority <= horizon, advancing
   [cur] no further than [min next-priority horizon]; [commit] decides
   whether an empty wheel pins [cur] to the horizon. *)
let rec extract t ~horizon ~commit =
  if t.live = 0 then begin
    if commit && horizon > t.cur then t.cur <- horizon;
    None
  end
  else if t.solo != t.nil then begin
    (* The lone queued node lives outside the buckets, so this branch is
       the whole story: pop it, or commit [cur] toward the horizon —
       which is safe without any digit reasoning precisely because no
       bucket placement depends on [cur] right now. *)
    let node = t.solo in
    if node.prio > horizon then begin
      if horizon > t.cur then t.cur <- horizon;
      None
    end
    else begin
      node.queued <- false;
      t.live <- 0;
      t.solo <- t.nil;
      t.cur <- node.prio;
      let r = Some (node.prio, node.value) in
      recycle t node;
      r
    end
  end
  else if t.counts.(0) > 0 then begin
    (* Level 0: the first busy slot at or after cur's slot holds exactly
       the next priority, in FIFO order. *)
    let s = first_occupied t 0 ~from:(t.cur land mask) in
    if s = slot_count then invalid_arg "Timer_wheel: inconsistent level-0 count"
    else begin
      let node = t.slots.(0).(s).next in
      if node.prio > horizon then begin
        if horizon > t.cur then t.cur <- horizon;
        None
      end
      else begin
        node.queued <- false;
        remove t node;
        t.live <- t.live - 1;
        t.cur <- node.prio;
        let r = Some (node.prio, node.value) in
        recycle t node;
        r
      end
    end
  end
  else scan_levels t ~horizon ~commit 1

(* Levels >= 1: find the next busy bucket beyond cur's digit, cascade it,
   and retry from level 0.  [t.live > 0] guarantees some level is busy. *)
and scan_levels t ~horizon ~commit lvl =
  if lvl >= levels then begin
    (* Unreachable while the level counts agree with [live]; fail loudly
       rather than spin if they ever do not. *)
    invalid_arg "Timer_wheel: inconsistent level counts"
  end
  else if t.counts.(lvl) = 0 then scan_levels t ~horizon ~commit (lvl + 1)
  else begin
    let shift = bits * lvl in
    let j = first_occupied t lvl ~from:(((t.cur lsr shift) land mask) + 1) in
    if j = slot_count then scan_levels t ~horizon ~commit (lvl + 1)
    else begin
      (* Window start of the found bucket: cur's digits above [lvl],
         digit [lvl] = j, zeros below.  At the top level there are no
         digits above — and shifting by [shift + bits > 63] would be
         unspecified, so that case must short-circuit. *)
      let above =
        (* [lsl]/[lsr] are right-associative, so the rounding-down needs
           explicit parens; and a shift amount > 62 is unspecified, so the
           top level (which has no digits above it) must short-circuit. *)
        let top = shift + bits in
        if top > 62 then 0 else (t.cur lsr top) lsl top
      in
      let bucket_start = above lor (j lsl shift) in
      if bucket_start > horizon then begin
        if horizon > t.cur then t.cur <- horizon;
        None
      end
      else begin
        let sentinel = t.slots.(lvl).(j) in
        let node = sentinel.next in
        if node.next == sentinel && node.prio <= horizon then begin
          (* Single-occupant bucket.  The first busy bucket at the lowest
             busy level holds the wheel's minimum (lower levels share
             [cur]'s digits above them, so they sort first; equal
             priorities always share a bucket), so a lone occupant IS the
             global minimum: pop it here and skip the cascade staircase
             entirely.  [cur] jumps straight to [node.prio], which keeps
             every other node's bucket valid — the digits above [lvl] are
             unchanged and the level-[lvl] digit advances exactly to [j],
             which this pop empties.  This is what makes a lone periodic
             timer O(1)-cheap per tick instead of one cascade per level. *)
          node.queued <- false;
          unlink node;
          t.counts.(lvl) <- t.counts.(lvl) - 1;
          occ_clear t lvl j;
          t.live <- t.live - 1;
          t.cur <- node.prio;
          let r = Some (node.prio, node.value) in
          recycle t node;
          r
        end
        else begin
          t.cur <- bucket_start;
          cascade t sentinel lvl j;
          extract t ~horizon ~commit
        end
      end
    end
  end

let pop_min t = extract t ~horizon:max_int ~commit:false
let pop_min_until t ~horizon = extract t ~horizon ~commit:true

let clear t =
  Array.iter
    (fun row ->
      Array.iter
        (fun sentinel ->
          let rec drain () =
            let node = sentinel.next in
            if node != sentinel then begin
              node.queued <- false;
              unlink node;
              drain ()
            end
          in
          drain ())
        row)
    t.slots;
  Array.fill t.counts 0 levels 0;
  Array.fill t.occ 0 (levels * 2) 0;
  if t.solo != t.nil then begin
    t.solo.queued <- false;
    t.solo <- t.nil
  end;
  t.live <- 0
