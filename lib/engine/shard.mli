(** Sharded deterministic execution: a conservative time-window barrier
    executor over OCaml 5 domains.

    One simulation is partitioned into [shards] independent event cores
    (each a {!Sim.t} plus the state its events touch).  All shards advance
    in lockstep windows: during a window every shard runs its own events
    up to the window end with {!Sim.run_until}; between windows exactly
    one domain (the caller) runs an [exchange] step that moves cross-shard
    messages from mailboxes into the destination sims.  Provided every
    cross-shard message generated inside a window carries a timestamp at
    or beyond the window end (the conservative-lookahead condition:
    window length <= minimum cross-shard latency), the protocol computes
    the same result for every shard count and every domain count — the
    windows, the mailbox drain order and the barrier schedule are all
    functions of simulated time alone, never of wall clock or domain
    identity.

    Memory model: shard state (sims, mailboxes being filled) is written
    only by the domain running that shard during a window; the exchange
    step reads and writes any shard's state while the workers are parked
    at the barrier.  The barrier mutex provides the happens-before edges
    in both directions, so no atomics are needed in the mailboxes. *)

(** Flat integer mailbox: a growable [int array] written by one domain
    during a window and drained by the exchange step at the barrier.
    Fixed-arity records are pushed as consecutive ints, so a mailbox
    allocates nothing in steady state (the buffer doubles until the
    high-water mark, then is reused). *)
module Intbox : sig
  type t

  val create : unit -> t
  val push2 : t -> int -> int -> unit
  val push3 : t -> int -> int -> int -> unit

  val length : t -> int
  (** Number of ints currently stored (a multiple of the record arity). *)

  val get : t -> int -> int
  val clear : t -> unit
end

type t

val create : ?domains:int -> shards:int -> unit -> t
(** An executor for [shards] event cores.  [domains] is the number of OS
    domains that run windows, including the calling one; it is clamped to
    [shards].  By default it is further capped at
    [Domain.recommended_domain_count ()] — oversubscribing domains on a
    small host is strictly slower (every domain shares the stop-the-world
    minor GC), and because the protocol is deterministic the capped
    executor computes bit-identical results, so the cap is safe.  Passing
    [domains] explicitly overrides the cap (tests use this to force real
    cross-domain execution on any host).
    @raise Invalid_argument if [shards < 1] or [domains < 1]. *)

val shards : t -> int
val domains : t -> int

val run_windows :
  ?prepare:(unit -> unit) ->
  t ->
  next:(unit -> int option) ->
  work:(int -> int -> unit) ->
  exchange:(int -> unit) ->
  unit
(** Drive the window loop.  [next ()] returns the next window-end horizon
    (a nanosecond timestamp), or [None] when done; [work shard horizon]
    advances one shard to the horizon (called once per shard per window,
    possibly on another domain); [exchange horizon] runs on the calling
    domain after every shard has reached the horizon — including after
    the final window.  [prepare] runs once on every participating domain
    (including the caller) before its first window; use it to seed
    domain-local state such as {!Rescont.Usage.set_strict_memory}.

    Shards are assigned to domains statically ([shard mod domains]) and
    the caller's own lane runs shard 0, so with one domain the loop is a
    plain sequential iteration with no synchronisation.  An exception
    raised by any [work] (on any domain) or by [exchange] is re-raised on
    the calling domain after the workers are parked and joined. *)
