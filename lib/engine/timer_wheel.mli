(** A hierarchical timer wheel (Varghese & Lauck) keyed by integer
    nanosecond priorities, with O(1) insert and O(1) eager cancellation.

    The wheel is an alternative backing store for {!Sim}'s event queue,
    tuned for the simulator's dominant insert pattern — [Sim.after] /
    [Sim.every] timers landing a bounded distance past the clock.  It is
    behaviourally equivalent to {!Heapq} under the event-queue discipline
    (priorities never below the last extraction) and that equivalence is
    QCheck-tested: both structures yield the same extraction order,
    including insertion-order FIFO among equal priorities, under random
    insert/cancel/pop schedules.

    Unlike {!Heapq}, the wheel maintains a monotone {e lower bound}
    [lower_bound t]: inserting below it is an error.  {!Sim} guarantees
    this by construction (events are never scheduled in the past), which
    is exactly what lets every operation skip the heap's O(log n)
    sifting.  Equal priorities extract in insertion order: equal-priority
    nodes always share a bucket, buckets are appended to, and cascades
    preserve list order. *)

type 'a t

type 'a handle
(** A handle onto an inserted element, usable to cancel or re-arm it
    later.  Handles are generation-stamped indexes into the wheel's
    node arena: a handle onto a recycled {!insert_oneshot} slot is
    detected as stale and refused, never misdirected at the slot's new
    occupant. *)

val create : unit -> 'a t

val length : 'a t -> int
(** Number of queued (inserted and neither cancelled nor popped)
    elements. *)

val is_empty : 'a t -> bool

val lower_bound : 'a t -> int
(** All queued elements have priority [>= lower_bound t], and future
    inserts must respect it.  Advances on extraction and when
    {!pop_min_until} commits a horizon. *)

val insert : 'a t -> prio:int -> 'a -> 'a handle
(** [insert t ~prio v] queues [v].  [prio] must be [>= lower_bound t].
    Ties extract in insertion order.  The returned handle {e pins} its
    arena slot: the node survives pops and cancellations and can be
    re-queued with {!rearm} indefinitely, so the slot is never recycled
    — use {!insert_oneshot} for cancellable events that fire once.
    @raise Invalid_argument if [prio < lower_bound t]. *)

val insert_oneshot : 'a t -> prio:int -> 'a -> 'a handle
(** Cancellable fire-once {!insert}: the handle can {!cancel} the
    element but never {!rearm} it, and the arena slot recycles through
    the free list the moment the element pops or the cancel lands.  A
    cancel arriving after the pop safely returns [false] (the handle's
    generation stamp no longer matches), even if the slot has since
    been reused.  Same ordering semantics as {!insert}.
    @raise Invalid_argument if [prio < lower_bound t]. *)

val insert_pooled : 'a t -> prio:int -> 'a -> unit
(** Fire-and-forget {!insert}: no handle is returned, so the element can
    never be cancelled or re-armed — in exchange the wheel recycles its
    node through an internal free list when it is popped, making
    steady-state one-shot traffic (scheduler kicks, packet-delivery
    events) allocation-free.  Same ordering semantics as {!insert}.
    @raise Invalid_argument if [prio < lower_bound t]. *)

val rearm : 'a t -> 'a handle -> prio:int -> unit
(** [rearm t h ~prio] re-queues the {e popped} (or cancelled) node behind
    [h] at a new priority, reusing its storage — the allocation-free
    re-arm used by {!Sim.every}'s periodic fast lane.  The node carries
    its original value.
    @raise Invalid_argument if the node is still queued or
    [prio < lower_bound t]. *)

val cancel : 'a t -> 'a handle -> bool
(** Remove the element behind the handle; [false] if it was already
    popped or cancelled.  Eager O(1) unlink — cancelled elements hold no
    memory and no residual slot. *)

val pop_min : 'a t -> (int * 'a) option
(** Extract the minimum-priority element.  Advances [lower_bound] to the
    extracted priority; leaves it unchanged when empty. *)

val pop_min_until : 'a t -> horizon:int -> (int * 'a) option
(** [pop_min_until t ~horizon] extracts the minimum element if its
    priority is [<= horizon]; otherwise returns [None] {e and commits}
    [lower_bound t] to [horizon] (the caller promises, as {!Sim.run_until}
    does with its clock, that nothing will ever be inserted below the
    horizon it asked about). *)

val clear : 'a t -> unit
(** Drop every queued element.  [lower_bound] is preserved. *)
