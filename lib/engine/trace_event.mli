(** Typed simulation trace events.

    One variant covers the whole engine: scheduling (dispatch / preempt /
    rebind), resource charging, network queueing and drops, and the HTTP
    request lifecycle.  Subsystems construct these instead of formatting
    strings, so exporters and tests can consume the stream structurally;
    {!Message} remains as the string fallback for ad-hoc tracing.

    Containers are identified by [(id, name)] pairs — the engine layer
    cannot depend on [Rescont], so events carry the identification, not the
    container itself. *)

type resource = Cpu | Rx | Tx | Memory | Disk

type drop_reason =
  | Overflow  (** queue at capacity; oldest evicted or newest refused *)
  | Timeout  (** half-open connection expired (SYN timeout) *)

type t =
  | Dispatch of { cpu : int; thread : string; cid : int; container : string; work_ns : int }
      (** A thread starts a time slice on processor [cpu]. *)
  | Preempt of { cpu : int; thread : string; remaining_ns : int }
      (** Slice expired with CPU work still pending; the thread re-queues. *)
  | Spawn of { thread : string; cid : int; container : string }
  | Rebind of { thread : string; cid : int; container : string }
  | Kill of { thread : string }
  | Irq_steal of { cpu : int; cost_ns : int; cid : int; container : string }
      (** Interrupt-level work stole wall-clock time on [cpu], charged as
          noted. *)
  | Migrate of { thread : string; from_cpu : int; to_cpu : int }
      (** A runnable thread moved between per-CPU run-queue shards (idle
          steal or periodic rebalance). *)
  | Charge of { resource : resource; cid : int; container : string; amount : int }
      (** Resource consumption charged to a container: [amount] is ns for
          [Cpu]/[Disk], bytes for the rest (negative = refund). *)
  | Net_syn of { src : string; listen : int }
  | Net_established of { conn : int; src : string }
  | Net_enqueue of { cid : int; container : string; depth : int }
      (** Packet queued for deferred protocol processing; [depth] is the
          queue depth after the insertion. *)
  | Net_dequeue of { cid : int; container : string; depth : int }
      (** Deferred work taken for processing; [depth] after removal. *)
  | Early_discard of { cid : int; container : string; depth : int }
      (** Per-container queue full: packet dropped at interrupt level. *)
  | Rx_discard of { cid : int; container : string; bytes : int }
      (** Socket-buffer memory limit exceeded: received data dropped. *)
  | Syn_drop of { listen : int; src : string; reason : drop_reason }
  | Accept_drop of { listen : int; conn : int }
  | Conn_close of { conn : int; refunded_bytes : int }
      (** Connection closed; unread buffered rx bytes credited back. *)
  | Http_request of { conn : int; path : string; dynamic : bool }
  | Http_response of { conn : int; path : string; bytes : int }
  | Message of { category : string; message : string }
      (** Raw-string fallback, the pre-typed [Tracelog.emit] interface. *)

val category : t -> string
(** Stable coarse grouping used by [Tracelog.find]: "dispatch", "preempt",
    "spawn", "rebind", "kill", "irq", "migrate", "charge", "net", "netq",
    "drop", "http", or the [Message] category. *)

val render : t -> string
(** One-line human-readable form (the legacy message text). *)

val to_json : t -> Jsonx.t
(** Structured form: an object with a ["type"] discriminator plus the
    event's fields.  Does not include the timestamp — the trace log adds
    it per entry. *)

val resource_name : resource -> string
val drop_reason_name : drop_reason -> string
