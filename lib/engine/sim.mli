(** The discrete-event simulation driver.

    A [Sim.t] owns the simulated clock and a queue of pending events.  An
    event is a closure fired at a scheduled instant; firing an event may
    schedule or cancel further events.  Events at the same instant fire in
    the order they were scheduled, so runs are fully deterministic. *)

type t

type event
(** A handle on a scheduled event, usable for cancellation. *)

type backend = Heap | Wheel
(** The event-queue backing store.  [Wheel] — a hierarchical timer wheel
    ({!Timer_wheel}) with O(1) schedule and cancel — is the default.
    [Heap] keeps the binary heap ({!Heapq}) as the property-tested
    executable specification; both fire identical event sequences, and
    [bench] measures them against each other. *)

val backend_name : backend -> string
val default_backend : backend

val create : ?backend:backend -> unit -> t

val backend : t -> backend
(** Which backing store this simulator was created with. *)

val now : t -> Simtime.t
(** Current simulated time.  Advances only inside [run_until] / [run]. *)

val at : t -> Simtime.t -> (unit -> unit) -> event
(** [at sim time f] schedules [f] to fire at [time].
    @raise Invalid_argument if [time] is in the past. *)

val after : t -> Simtime.span -> (unit -> unit) -> event
(** [after sim span f] is [at sim (add (now sim) span) f].  A non-positive
    span schedules for the current instant (fires after the running event
    completes). *)

val post_at : t -> Simtime.t -> (unit -> unit) -> unit
(** [at] without the handle: the event cannot be cancelled, and in
    exchange the wheel backend recycles its queue node when the event
    fires, so fire-and-forget scheduling allocates nothing in steady
    state.  Fires in exactly the position an [at] at the same instant
    would.
    @raise Invalid_argument if [time] is in the past. *)

val post : t -> Simtime.span -> (unit -> unit) -> unit
(** [post sim span f] is [post_at sim (add (now sim) span) f], clamping
    non-positive spans to the current instant like {!after}. *)

val cancel : t -> event -> bool
(** Cancel a pending event; [false] if it already fired or was cancelled. *)

val pending : t -> int
(** Number of scheduled, uncancelled events. *)

val run_until : t -> Simtime.t -> unit
(** Fire events in timestamp order until the queue is empty or the next
    event lies strictly beyond the horizon; the clock finishes at the
    horizon (or at the last fired event if the queue drains early, never
    moving backwards). *)

val run : t -> unit
(** Fire events until the queue is empty. *)

val step : t -> bool
(** Fire exactly the next event; [false] when the queue is empty. *)

val every : t -> Simtime.span -> (unit -> unit) -> event
(** [every sim period f] schedules [f] periodically, starting one period
    from now.  The returned handle cancels the whole series.  The series
    reuses a single closure and event body across ticks; each period
    costs only one queue insertion.
    @raise Invalid_argument if [period] is not positive. *)
