(* The event queue is pluggable: the hierarchical timer wheel is the
   production backing store (O(1) schedule/cancel for the dominant
   [after]/[every] pattern), the binary heap is kept as the property-
   tested executable specification and for A/B benchmarking.  Both
   extract in (timestamp, insertion-order) order, so a run's event
   sequence is identical under either backend — test_timer_wheel checks
   exactly that.

   An event is represented as thinly as possible: a one-shot event IS its
   queue handle behind a one-word constructor (both backends tolerate a
   cancel after extraction and report it as [false]), so [at]/[after] add
   two words over the queue node itself.  Only [every] — one record per
   periodic SERIES, not per tick — needs the extra indirection of a
   mutable cell, because the heap backend re-inserts under a fresh handle
   each period. *)

type backend = Heap | Wheel

let backend_name = function Heap -> "heap" | Wheel -> "wheel"

type queue = Q_heap of (unit -> unit) Heapq.t | Q_wheel of (unit -> unit) Timer_wheel.t

type t = { mutable clock : Simtime.t; queue : queue }

type shandle = S_heap of Heapq.handle | S_wheel of (unit -> unit) Timer_wheel.handle

type series = { mutable cancelled : bool; mutable shandle : shandle option }

type event =
  | Ev_heap of Heapq.handle
  | Ev_wheel of (unit -> unit) Timer_wheel.handle
  | Ev_series of series

let default_backend = Wheel

let create ?(backend = default_backend) () =
  let queue =
    match backend with Heap -> Q_heap (Heapq.create ()) | Wheel -> Q_wheel (Timer_wheel.create ())
  in
  { clock = Simtime.zero; queue }

let backend t = match t.queue with Q_heap _ -> Heap | Q_wheel _ -> Wheel
let now t = t.clock

let check_time t time =
  if Simtime.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Sim.at: %a is before current time %a" Simtime.pp time Simtime.pp t.clock)

(* One-shot events use the wheel's stamped oneshot lane: the node's
   arena slot recycles as soon as it fires or is cancelled, and a cancel
   arriving after the firing is refused by the generation stamp — so the
   cancellable [at]/[after] traffic (scheduler slice-end events, TCP-ish
   timeouts) is allocation- and leak-free in steady state, not just the
   fire-and-forget [post] lane. *)
let at t time f =
  check_time t time;
  match t.queue with
  | Q_heap q -> Ev_heap (Heapq.insert q ~prio:(Simtime.to_ns time) f)
  | Q_wheel w -> Ev_wheel (Timer_wheel.insert_oneshot w ~prio:(Simtime.to_ns time) f)

let after t span f =
  let span = Simtime.span_max span Simtime.span_zero in
  at t (Simtime.add t.clock span) f

(* Fire-and-forget scheduling: most events in a run — scheduler kicks,
   packet deliveries, think-time wakeups — are never cancelled, so
   returning a cancellable handle for them is pure overhead.  [post] lets
   the wheel backend recycle the queue node through its free list, making
   these events allocation-free in steady state. *)
let post_at t time f =
  check_time t time;
  match t.queue with
  | Q_heap q -> ignore (Heapq.insert q ~prio:(Simtime.to_ns time) f)
  | Q_wheel w -> Timer_wheel.insert_pooled w ~prio:(Simtime.to_ns time) f

let post t span f =
  let span = Simtime.span_max span Simtime.span_zero in
  post_at t (Simtime.add t.clock span) f

let cancel_shandle t h =
  match (h, t.queue) with
  | S_heap h, Q_heap q -> Heapq.cancel q h
  | S_wheel h, Q_wheel w -> Timer_wheel.cancel w h
  | _, _ -> invalid_arg "Sim.cancel: event belongs to a different backend"

let cancel t event =
  match event with
  | Ev_heap h -> (
      match t.queue with
      | Q_heap q -> Heapq.cancel q h
      | Q_wheel _ -> invalid_arg "Sim.cancel: event belongs to a different backend")
  | Ev_wheel h -> (
      match t.queue with
      | Q_wheel w -> Timer_wheel.cancel w h
      | Q_heap _ -> invalid_arg "Sim.cancel: event belongs to a different backend")
  | Ev_series s ->
      if s.cancelled then false
      else begin
        s.cancelled <- true;
        match s.shandle with None -> false | Some h -> cancel_shandle t h
      end

let pending t =
  match t.queue with Q_heap q -> Heapq.length q | Q_wheel w -> Timer_wheel.length w

let fire t prio f =
  t.clock <- Simtime.of_ns prio;
  f ()

let pop_min t =
  match t.queue with Q_heap q -> Heapq.pop_min q | Q_wheel w -> Timer_wheel.pop_min w

(* Next event at or before [horizon] (in ns), or [None].  The wheel
   commits its lower bound to the horizon on [None]; that is sound
   because [run_until] then advances the clock to the horizon, and no
   event is ever scheduled before the clock. *)
let pop_min_until t ~horizon =
  match t.queue with
  | Q_wheel w -> Timer_wheel.pop_min_until w ~horizon
  | Q_heap q -> (
      match Heapq.peek_min_prio q with
      | Some prio when prio <= horizon -> Heapq.pop_min q
      | Some _ | None -> None)

let step t =
  match pop_min t with
  | None -> false
  | Some (prio, f) ->
      fire t prio f;
      true

let run_until t horizon =
  let horizon_ns = Simtime.to_ns horizon in
  let rec loop () =
    match pop_min_until t ~horizon:horizon_ns with
    | Some (prio, f) ->
        fire t prio f;
        loop ()
    | None -> ()
  in
  loop ();
  if Simtime.(horizon > t.clock) then t.clock <- horizon

let run t = while step t do () done

(* One closure and one series record serve the whole periodic series.  On
   the wheel backend the series also owns a single queue node: each tick
   [Timer_wheel.rearm]s the node it just fired from, so steady-state
   periodic timers (a scheduler quantum, an invariant sweep) allocate
   nothing at all per period.  The handle never changes across re-arms,
   so [cancel] keeps working on whichever incarnation is queued.  A
   re-arm lands at the same bucket position a fresh insert would, so the
   heap backend (which re-inserts) fires an identical event sequence. *)
let every t period f =
  if not (Simtime.span_is_positive period) then invalid_arg "Sim.every: period must be positive";
  let body = { cancelled = false; shandle = None } in
  (match t.queue with
  | Q_wheel w ->
      let tick () =
        if not body.cancelled then begin
          f ();
          if not body.cancelled then
            match body.shandle with
            | Some (S_wheel h) ->
                Timer_wheel.rearm w h ~prio:(Simtime.to_ns (Simtime.add t.clock period))
            | Some (S_heap _) | None -> assert false
        end
      in
      body.shandle <-
        Some (S_wheel (Timer_wheel.insert w ~prio:(Simtime.to_ns (Simtime.add t.clock period)) tick))
  | Q_heap q ->
      let rec tick () =
        if not body.cancelled then begin
          f ();
          if not body.cancelled then arm ()
        end
      and arm () =
        body.shandle <-
          Some (S_heap (Heapq.insert q ~prio:(Simtime.to_ns (Simtime.add t.clock period)) tick))
      in
      arm ());
  Ev_series body
