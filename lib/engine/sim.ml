(* The event queue is pluggable: the hierarchical timer wheel is the
   production backing store (O(1) schedule/cancel for the dominant
   [after]/[every] pattern), the binary heap is kept as the property-
   tested executable specification and for A/B benchmarking.  Both
   extract in (timestamp, insertion-order) order, so a run's event
   sequence is identical under either backend — test_timer_wheel checks
   exactly that. *)

type backend = Heap | Wheel

let backend_name = function Heap -> "heap" | Wheel -> "wheel"

type queue = Q_heap of (unit -> unit) Heapq.t | Q_wheel of (unit -> unit) Timer_wheel.t
type handle = H_heap of Heapq.handle | H_wheel of Timer_wheel.handle

type t = { mutable clock : Simtime.t; queue : queue }

type event_body = { mutable cancelled : bool; mutable handle : handle option }
type event = event_body

let default_backend = Wheel

let create ?(backend = default_backend) () =
  let queue =
    match backend with Heap -> Q_heap (Heapq.create ()) | Wheel -> Q_wheel (Timer_wheel.create ())
  in
  { clock = Simtime.zero; queue }

let backend t = match t.queue with Q_heap _ -> Heap | Q_wheel _ -> Wheel
let now t = t.clock

let insert t ~prio f =
  match t.queue with
  | Q_heap q -> H_heap (Heapq.insert q ~prio f)
  | Q_wheel w -> H_wheel (Timer_wheel.insert w ~prio f)

let at t time f =
  if Simtime.(time < t.clock) then
    invalid_arg
      (Format.asprintf "Sim.at: %a is before current time %a" Simtime.pp time Simtime.pp t.clock);
  let body = { cancelled = false; handle = None } in
  body.handle <- Some (insert t ~prio:(Simtime.to_ns time) f);
  body

let after t span f =
  let span = Simtime.span_max span Simtime.span_zero in
  at t (Simtime.add t.clock span) f

let cancel t event =
  if event.cancelled then false
  else begin
    event.cancelled <- true;
    match (event.handle, t.queue) with
    | None, _ -> false
    | Some (H_heap h), Q_heap q -> Heapq.cancel q h
    | Some (H_wheel h), Q_wheel w -> Timer_wheel.cancel w h
    | Some _, _ -> invalid_arg "Sim.cancel: event belongs to a different backend"
  end

let pending t =
  match t.queue with Q_heap q -> Heapq.length q | Q_wheel w -> Timer_wheel.length w

let fire t prio f =
  t.clock <- Simtime.of_ns prio;
  f ()

let pop_min t =
  match t.queue with Q_heap q -> Heapq.pop_min q | Q_wheel w -> Timer_wheel.pop_min w

(* Next event at or before [horizon] (in ns), or [None].  The wheel
   commits its lower bound to the horizon on [None]; that is sound
   because [run_until] then advances the clock to the horizon, and no
   event is ever scheduled before the clock. *)
let pop_min_until t ~horizon =
  match t.queue with
  | Q_wheel w -> Timer_wheel.pop_min_until w ~horizon
  | Q_heap q -> (
      match Heapq.peek_min_prio q with
      | Some prio when prio <= horizon -> Heapq.pop_min q
      | Some _ | None -> None)

let step t =
  match pop_min t with
  | None -> false
  | Some (prio, f) ->
      fire t prio f;
      true

let run_until t horizon =
  let horizon_ns = Simtime.to_ns horizon in
  let rec loop () =
    match pop_min_until t ~horizon:horizon_ns with
    | Some (prio, f) ->
        fire t prio f;
        loop ()
    | None -> ()
  in
  loop ();
  if Simtime.(horizon > t.clock) then t.clock <- horizon

let run t = while step t do () done

(* One closure and one event body serve the whole periodic series: each
   tick re-inserts the same [tick] closure, so a long-lived periodic
   timer (a scheduler quantum, an invariant sweep) allocates only its
   backend queue node per period instead of rebuilding a closure chain. *)
let every t period f =
  if not (Simtime.span_is_positive period) then invalid_arg "Sim.every: period must be positive";
  let body = { cancelled = false; handle = None } in
  let rec tick () =
    if not body.cancelled then begin
      f ();
      if not body.cancelled then arm ()
    end
  and arm () =
    body.handle <- Some (insert t ~prio:(Simtime.to_ns (Simtime.add t.clock period)) tick)
  in
  arm ();
  body
