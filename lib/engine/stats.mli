(** Online statistics used by the experiment harnesses. *)

module Summary : sig
  (** Streaming count/mean/variance/min/max (Welford's algorithm). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float

  val merge : t -> t -> t
  (** Combine two summaries as if their streams were concatenated. *)

  val pp : Format.formatter -> t -> unit
end

module Reservoir : sig
  (** Fixed-size uniform sample of a stream, for percentile estimates on
      long runs without unbounded memory. *)

  type t

  val create : ?capacity:int -> Rng.t -> t
  val add : t -> float -> unit
  val count : t -> int

  val percentile : t -> float -> float
  (** [percentile r 0.99] estimates the 99th percentile by linear
      interpolation over the retained sample.  @raise Invalid_argument when
      empty or when the fraction is outside [0, 1]. *)

  val median : t -> float
end

module Histogram : sig
  (** Fixed-width-bucket histogram over a known range. *)

  type t

  val create : lo:float -> hi:float -> buckets:int -> t
  val add : t -> float -> unit
  val count : t -> int
  val lo : t -> float
  val hi : t -> float
  val bucket_counts : t -> int array
  val pp : Format.formatter -> t -> unit
end

module Rate : sig
  (** Event counting over simulated time, e.g. requests per second.

      Marks are retained in a fixed-capacity ring buffer, so memory stays
      bounded over arbitrarily long runs; windowed queries see at most the
      last [capacity] marks. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] bounds the retained marks (default 4096). *)

  val mark : t -> ?weight:int -> Simtime.t -> unit

  val count : t -> int
  (** All-time weighted mark count (not bounded by the ring). *)

  val retained : t -> int
  (** Number of marks currently held in the ring. *)

  val dropped : t -> int
  (** Weighted count of marks overwritten by ring wrap since creation: 0
      means every mark ever made is retained and windowed queries are
      exact over any range. *)

  val covered_since : t -> Simtime.t option
  (** The earliest timestamp for which the ring still holds every mark.
      [None] when nothing has been dropped (full history retained).
      Queries reaching before this point see only a partial count. *)

  val fold_marks : t -> ('a -> int -> int -> 'a) -> 'a -> 'a
  (** [fold_marks t f init] folds [f acc time_ns weight] over the retained
      marks, oldest first.  Only the last {!retained} marks are visible. *)

  val rate_over : t -> Simtime.span -> float
  (** [rate_over t window] is the weighted count of marks whose timestamps
      fall within [window] of the most recent mark, divided by [window] in
      seconds.  Zero when empty or the window is non-positive.  When the
      ring has saturated inside the window (marks arriving faster than
      capacity over the window — open-loop arrival rates do this), the
      rate is computed over the span the ring actually covers instead of
      the full window, so the result tracks the true rate rather than
      flattening at capacity/window. *)

  val rate_between : t -> Simtime.t -> Simtime.t -> float
  (** Retained events with timestamps inside the half-open interval, per
      second.  Exact only when the interval lies within {!covered_since};
      older marks have been overwritten and are not counted. *)
end
