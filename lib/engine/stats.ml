module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () = { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

  let add t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0. else t.mean
  let variance t = if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let count = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int count) in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count /. float_of_int count)
      in
      {
        count;
        mean;
        m2;
        min = Stdlib.min a.min b.min;
        max = Stdlib.max a.max b.max;
        total = a.total +. b.total;
      }
    end

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.count (mean t) (stddev t)
      t.min t.max
end

module Reservoir = struct
  type t = { capacity : int; rng : Rng.t; mutable seen : int; sample : float array }

  let create ?(capacity = 4096) rng =
    if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
    { capacity; rng; seen = 0; sample = Array.make capacity 0. }

  let add t x =
    if t.seen < t.capacity then t.sample.(t.seen) <- x
    else begin
      (* Vitter's algorithm R: keep each element with probability k/n. *)
      let j = Rng.int t.rng (t.seen + 1) in
      if j < t.capacity then t.sample.(j) <- x
    end;
    t.seen <- t.seen + 1

  let count t = t.seen

  let sorted t =
    let n = Stdlib.min t.seen t.capacity in
    let a = Array.sub t.sample 0 n in
    Array.sort compare a;
    a

  let percentile t frac =
    if t.seen = 0 then invalid_arg "Reservoir.percentile: empty";
    if frac < 0. || frac > 1. then invalid_arg "Reservoir.percentile: fraction out of range";
    let a = sorted t in
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let pos = frac *. float_of_int (n - 1) in
      let lo = int_of_float (floor pos) in
      let hi = Stdlib.min (lo + 1) (n - 1) in
      let w = pos -. float_of_int lo in
      ((1. -. w) *. a.(lo)) +. (w *. a.(hi))
    end

  let median t = percentile t 0.5
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~buckets =
    if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be positive";
    { lo; hi; counts = Array.make buckets 0; total = 0 }

  let add t x =
    let buckets = Array.length t.counts in
    let idx =
      if x <= t.lo then 0
      else if x >= t.hi then buckets - 1
      else int_of_float (float_of_int buckets *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    let idx = Stdlib.min idx (buckets - 1) in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let count t = t.total
  let lo t = t.lo
  let hi t = t.hi
  let bucket_counts t = Array.copy t.counts

  let pp ppf t =
    let buckets = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int buckets in
    let peak = Array.fold_left Stdlib.max 1 t.counts in
    Array.iteri
      (fun i c ->
        let bar = String.make (40 * c / peak) '#' in
        Format.fprintf ppf "[%8.3f,%8.3f) %6d %s@." (t.lo +. (width *. float_of_int i))
          (t.lo +. (width *. float_of_int (i + 1)))
          c bar)
      t.counts
end

module Rate = struct
  (* Marks live in a fixed-capacity ring so memory stays bounded over long
     runs; [count] remains the all-time weighted total. *)
  type t = {
    capacity : int;
    times : int array; (* timestamps in ns *)
    weights : int array;
    mutable head : int; (* next write position *)
    mutable len : int; (* retained marks, <= capacity *)
    mutable count : int;
    mutable latest : int; (* ns of the most recent mark *)
    mutable dropped : int; (* weighted marks overwritten by ring wrap *)
  }

  let create ?(capacity = 4096) () =
    if capacity <= 0 then invalid_arg "Rate.create: capacity must be positive";
    {
      capacity;
      times = Array.make capacity 0;
      weights = Array.make capacity 0;
      head = 0;
      len = 0;
      count = 0;
      latest = min_int;
      dropped = 0;
    }

  let mark t ?(weight = 1) now =
    let ns = Simtime.to_ns now in
    if t.len = t.capacity then t.dropped <- t.dropped + t.weights.(t.head);
    t.times.(t.head) <- ns;
    t.weights.(t.head) <- weight;
    t.head <- (t.head + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1;
    t.count <- t.count + weight;
    if ns > t.latest then t.latest <- ns

  let count t = t.count
  let retained t = t.len
  let dropped t = t.dropped

  (* Timestamp of the oldest retained mark (only meaningful when len > 0). *)
  let earliest_ns t =
    let start = ((t.head - t.len) mod t.capacity + t.capacity) mod t.capacity in
    t.times.(start)

  let covered_since t = if t.len = 0 || t.dropped = 0 then None else Some (Simtime.of_ns (earliest_ns t))

  let fold_marks t f init =
    let acc = ref init in
    let start = ((t.head - t.len) mod t.capacity + t.capacity) mod t.capacity in
    for i = 0 to t.len - 1 do
      let idx = (start + i) mod t.capacity in
      acc := f !acc t.times.(idx) t.weights.(idx)
    done;
    !acc

  let rate_over t window =
    let secs = Simtime.span_to_sec_f window in
    if secs <= 0. || t.len = 0 then 0.
    else begin
      let cutoff = t.latest - Simtime.span_to_ns window in
      if t.dropped = 0 || earliest_ns t <= cutoff then begin
        (* Every mark inside the window is still retained: exact. *)
        let in_window =
          fold_marks t (fun acc ts w -> if ts > cutoff && ts <= t.latest then acc + w else acc) 0
        in
        float_of_int in_window /. secs
      end
      else begin
        (* Ring saturated inside the window: marks that old were
           overwritten, so dividing the retained weight by the full window
           would under-report (the pre-fix behaviour capped the result near
           capacity/window).  Report the rate over the span the ring still
           covers, (earliest retained, latest]; the earliest mark itself is
           excluded because the gap preceding it is unknown. *)
        let e = earliest_ns t in
        let covered_secs = float_of_int (t.latest - e) /. 1e9 in
        if covered_secs <= 0. then
          (* Degenerate: every retained mark shares one timestamp; fall
             back to the requested window. *)
          float_of_int (fold_marks t (fun acc _ w -> acc + w) 0) /. secs
        else begin
          let in_cov = fold_marks t (fun acc ts w -> if ts > e then acc + w else acc) 0 in
          float_of_int in_cov /. covered_secs
        end
      end
    end

  let rate_between t t0 t1 =
    let lo = Simtime.to_ns t0 and hi = Simtime.to_ns t1 in
    let in_window = fold_marks t (fun acc ts w -> if ts >= lo && ts < hi then acc + w else acc) 0 in
    let secs = Simtime.span_to_sec_f (Simtime.diff t1 t0) in
    if secs <= 0. then 0. else float_of_int in_window /. secs
end
