type resource = Cpu | Rx | Tx | Memory | Disk
type drop_reason = Overflow | Timeout

type t =
  | Dispatch of { cpu : int; thread : string; cid : int; container : string; work_ns : int }
  | Preempt of { cpu : int; thread : string; remaining_ns : int }
  | Spawn of { thread : string; cid : int; container : string }
  | Rebind of { thread : string; cid : int; container : string }
  | Kill of { thread : string }
  | Irq_steal of { cpu : int; cost_ns : int; cid : int; container : string }
  | Migrate of { thread : string; from_cpu : int; to_cpu : int }
  | Charge of { resource : resource; cid : int; container : string; amount : int }
  | Net_syn of { src : string; listen : int }
  | Net_established of { conn : int; src : string }
  | Net_enqueue of { cid : int; container : string; depth : int }
  | Net_dequeue of { cid : int; container : string; depth : int }
  | Early_discard of { cid : int; container : string; depth : int }
  | Rx_discard of { cid : int; container : string; bytes : int }
  | Syn_drop of { listen : int; src : string; reason : drop_reason }
  | Accept_drop of { listen : int; conn : int }
  | Conn_close of { conn : int; refunded_bytes : int }
  | Http_request of { conn : int; path : string; dynamic : bool }
  | Http_response of { conn : int; path : string; bytes : int }
  | Message of { category : string; message : string }

let resource_name = function
  | Cpu -> "cpu"
  | Rx -> "rx"
  | Tx -> "tx"
  | Memory -> "memory"
  | Disk -> "disk"

let drop_reason_name = function Overflow -> "overflow" | Timeout -> "timeout"

let category = function
  | Dispatch _ -> "dispatch"
  | Preempt _ -> "preempt"
  | Spawn _ -> "spawn"
  | Rebind _ -> "rebind"
  | Kill _ -> "kill"
  | Irq_steal _ -> "irq"
  | Migrate _ -> "migrate"
  | Charge _ -> "charge"
  | Net_syn _ | Net_established _ | Conn_close _ -> "net"
  | Net_enqueue _ | Net_dequeue _ -> "netq"
  | Early_discard _ | Rx_discard _ | Syn_drop _ | Accept_drop _ -> "drop"
  | Http_request _ | Http_response _ -> "http"
  | Message { category; _ } -> category

let render = function
  | Dispatch { cpu; thread; container; work_ns; _ } ->
      Printf.sprintf "cpu%d runs %s for %dns (binding %s)" cpu thread work_ns container
  | Preempt { cpu; thread; remaining_ns } ->
      Printf.sprintf "cpu%d preempts %s (%dns pending)" cpu thread remaining_ns
  | Spawn { thread; container; _ } -> Printf.sprintf "thread %s in container %s" thread container
  | Rebind { thread; container; _ } -> Printf.sprintf "%s -> %s" thread container
  | Kill { thread } -> thread
  | Irq_steal { cpu; cost_ns; container; _ } ->
      Printf.sprintf "cpu%d steal %dns charged to %s" cpu cost_ns container
  | Migrate { thread; from_cpu; to_cpu } ->
      Printf.sprintf "%s migrates cpu%d -> cpu%d" thread from_cpu to_cpu
  | Charge { resource; container; amount; _ } ->
      Printf.sprintf "%s %+d to %s" (resource_name resource) amount container
  | Net_syn { src; listen } -> Printf.sprintf "SYN from %s on listen#%d" src listen
  | Net_established { conn; src } -> Printf.sprintf "conn#%d established from %s" conn src
  | Net_enqueue { container; depth; _ } ->
      Printf.sprintf "enqueue at container %s (depth %d)" container depth
  | Net_dequeue { container; depth; _ } ->
      Printf.sprintf "dequeue at container %s (depth %d)" container depth
  | Early_discard { container; depth; _ } ->
      Printf.sprintf "early discard at container %s (depth %d)" container depth
  | Rx_discard { container; bytes; _ } ->
      Printf.sprintf "rx memory limit: dropped %dB for %s" bytes container
  | Syn_drop { listen; src; reason } ->
      Printf.sprintf "SYN %s drop on listen#%d (src %s)" (drop_reason_name reason) listen src
  | Accept_drop { listen; conn } ->
      Printf.sprintf "accept-queue drop of conn#%d on listen#%d" conn listen
  | Conn_close { conn; refunded_bytes } ->
      Printf.sprintf "conn#%d closed (refunded %dB buffered rx)" conn refunded_bytes
  | Http_request { conn; path; dynamic } ->
      Printf.sprintf "conn#%d %s %s" conn (if dynamic then "CGI" else "GET") path
  | Http_response { conn; path; bytes } -> Printf.sprintf "conn#%d %s -> %dB" conn path bytes
  | Message { message; _ } -> message

open Jsonx

let typed name fields = Obj (("type", String name) :: fields)
let container_fields cid container = [ ("cid", Int cid); ("container", String container) ]

let to_json = function
  | Dispatch { cpu; thread; cid; container; work_ns } ->
      typed "dispatch"
        ([ ("cpu", Int cpu); ("thread", String thread) ]
        @ container_fields cid container
        @ [ ("work_ns", Int work_ns) ])
  | Preempt { cpu; thread; remaining_ns } ->
      typed "preempt"
        [ ("cpu", Int cpu); ("thread", String thread); ("remaining_ns", Int remaining_ns) ]
  | Spawn { thread; cid; container } ->
      typed "spawn" (("thread", String thread) :: container_fields cid container)
  | Rebind { thread; cid; container } ->
      typed "rebind" (("thread", String thread) :: container_fields cid container)
  | Kill { thread } -> typed "kill" [ ("thread", String thread) ]
  | Irq_steal { cpu; cost_ns; cid; container } ->
      typed "irq_steal"
        (("cpu", Int cpu) :: ("cost_ns", Int cost_ns) :: container_fields cid container)
  | Migrate { thread; from_cpu; to_cpu } ->
      typed "migrate"
        [ ("thread", String thread); ("from_cpu", Int from_cpu); ("to_cpu", Int to_cpu) ]
  | Charge { resource; cid; container; amount } ->
      typed "charge"
        (("resource", String (resource_name resource))
        :: (container_fields cid container @ [ ("amount", Int amount) ]))
  | Net_syn { src; listen } -> typed "syn" [ ("src", String src); ("listen", Int listen) ]
  | Net_established { conn; src } ->
      typed "established" [ ("conn", Int conn); ("src", String src) ]
  | Net_enqueue { cid; container; depth } ->
      typed "enqueue" (container_fields cid container @ [ ("depth", Int depth) ])
  | Net_dequeue { cid; container; depth } ->
      typed "dequeue" (container_fields cid container @ [ ("depth", Int depth) ])
  | Early_discard { cid; container; depth } ->
      typed "early_discard" (container_fields cid container @ [ ("depth", Int depth) ])
  | Rx_discard { cid; container; bytes } ->
      typed "rx_discard" (container_fields cid container @ [ ("bytes", Int bytes) ])
  | Syn_drop { listen; src; reason } ->
      typed "syn_drop"
        [
          ("listen", Int listen);
          ("src", String src);
          ("reason", String (drop_reason_name reason));
        ]
  | Accept_drop { listen; conn } ->
      typed "accept_drop" [ ("listen", Int listen); ("conn", Int conn) ]
  | Conn_close { conn; refunded_bytes } ->
      typed "conn_close" [ ("conn", Int conn); ("refunded_bytes", Int refunded_bytes) ]
  | Http_request { conn; path; dynamic } ->
      typed "http_request"
        [ ("conn", Int conn); ("path", String path); ("dynamic", Bool dynamic) ]
  | Http_response { conn; path; bytes } ->
      typed "http_response" [ ("conn", Int conn); ("path", String path); ("bytes", Int bytes) ]
  | Message { category; message } ->
      typed "message" [ ("category", String category); ("message", String message) ]
