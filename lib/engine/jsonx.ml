type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match Float.classify_float f with
      | FP_nan | FP_infinite -> Buffer.add_string buf "null"
      | FP_zero | FP_subnormal | FP_normal ->
          if Float.is_integer f && Float.abs f < 1e15 then
            Buffer.add_string buf (Printf.sprintf "%.1f" f)
          else Buffer.add_string buf (Printf.sprintf "%.17g" f))
  | String s -> add_escaped buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* {1 Parser} — plain recursive descent over the input string. *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        true
    | Some _ | None -> false
  do
    ()
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | Some c' -> fail cur (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> fail cur (Printf.sprintf "expected '%c', found end of input" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.text && String.sub cur.text cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> fail cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if cur.pos + 4 > String.length cur.text then fail cur "truncated \\u escape";
                let hex = String.sub cur.text cur.pos 4 in
                cur.pos <- cur.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex) with _ -> fail cur "invalid \\u escape"
                in
                (* ASCII only; anything above is replaced, which is all the
                   exporters ever emit. *)
                Buffer.add_char buf (if code < 128 then Char.chr code else '?')
            | _ -> fail cur "invalid escape");
            loop ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec scan () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
        advance cur;
        scan ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance cur;
        scan ()
    | Some _ | None -> ()
  in
  scan ();
  let s = String.sub cur.text start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with Some f -> Float f | None -> fail cur "invalid number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail cur "invalid number")

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_body cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields (kv :: acc)
          | Some '}' ->
              advance cur;
              List.rev (kv :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected character '%c'" c)

let parse text =
  let cur = { text; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos < String.length text then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

let parse_exn text =
  match parse text with Ok v -> v | Error msg -> invalid_arg ("Jsonx.parse_exn: " ^ msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_list = function List xs -> xs | _ -> []
let string_value = function String s -> Some s | _ -> None

let int_value = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let float_value = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None
