(* A classic array-backed binary heap.  Each inserted element gets a node
   record; cancellation marks the node dead and decrements [live].  Dead
   nodes are discarded when they reach the top, and the whole heap is
   compacted as soon as dead nodes outnumber live ones, so a cancel-heavy
   workload (e.g. TCP timers under a SYN flood) cannot grow the array —
   or pin cancelled payloads — without bound.

   Slots are stored unboxed ([node array], not [node option array]): sift
   steps move pointers without re-wrapping, and vacated slots are filled
   with a sentinel so extracted payloads become collectable immediately.
   The sentinel is an immediate value never dereferenced — every array
   read is guarded by [size]. *)

type 'a node = { prio : int; seq : int; value : 'a; mutable alive : bool }
type handle = H : 'a node -> handle

type 'a t = {
  mutable arr : 'a node array; (* slots [0, size) hold real nodes *)
  mutable size : int; (* slots used in [arr], live or dead *)
  mutable live : int;
  mutable next_seq : int;
}

let nil () : 'a node = Obj.magic 0

let create () = { arr = Array.make 64 (nil ()); size = 0; live = 0; next_seq = 0 }
let length q = q.live
let is_empty q = q.live = 0
let physical_size q = q.size

let node_lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q =
  let arr = Array.make (2 * Array.length q.arr) (nil ()) in
  Array.blit q.arr 0 arr 0 q.size;
  q.arr <- arr

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    let np = Array.unsafe_get q.arr parent and ni = Array.unsafe_get q.arr i in
    if node_lt ni np then begin
      Array.unsafe_set q.arr parent ni;
      Array.unsafe_set q.arr i np;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && node_lt (Array.unsafe_get q.arr l) (Array.unsafe_get q.arr !smallest) then
    smallest := l;
  if r < q.size && node_lt (Array.unsafe_get q.arr r) (Array.unsafe_get q.arr !smallest) then
    smallest := r;
  if !smallest <> i then begin
    let tmp = Array.unsafe_get q.arr i in
    Array.unsafe_set q.arr i (Array.unsafe_get q.arr !smallest);
    Array.unsafe_set q.arr !smallest tmp;
    sift_down q !smallest
  end

let insert q ~prio value =
  let node = { prio; seq = q.next_seq; value; alive = true } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.arr then grow q;
  q.arr.(q.size) <- node;
  q.size <- q.size + 1;
  q.live <- q.live + 1;
  sift_up q (q.size - 1);
  H node

(* Drop every dead node in one pass and re-establish the heap property.
   Runs when dead nodes outnumber live ones (with a floor so tiny heaps
   don't thrash), keeping the array at most ~2x the live population. *)
let compact q =
  let j = ref 0 in
  for i = 0 to q.size - 1 do
    let n = Array.unsafe_get q.arr i in
    if n.alive then begin
      Array.unsafe_set q.arr !j n;
      incr j
    end
  done;
  for i = !j to q.size - 1 do
    Array.unsafe_set q.arr i (nil ())
  done;
  q.size <- !j;
  let cap = Array.length q.arr in
  if cap > 64 && q.size * 4 < cap then begin
    let arr = Array.make (max 64 (2 * max 1 q.size)) (nil ()) in
    Array.blit q.arr 0 arr 0 q.size;
    q.arr <- arr
  end;
  for i = (q.size / 2) - 1 downto 0 do
    sift_down q i
  done

let cancel q (H node) =
  if node.alive then begin
    node.alive <- false;
    q.live <- q.live - 1;
    let dead = q.size - q.live in
    if dead > q.live && dead > 64 then compact q;
    true
  end
  else false

let remove_top q =
  let top = q.arr.(0) in
  q.size <- q.size - 1;
  q.arr.(0) <- q.arr.(q.size);
  q.arr.(q.size) <- nil ();
  if q.size > 0 then sift_down q 0;
  top

(* Discard dead nodes at the top until a live one (or nothing) remains. *)
let rec skim q = if q.size > 0 && not q.arr.(0).alive then (ignore (remove_top q); skim q)

let pop_min q =
  skim q;
  if q.size = 0 then None
  else begin
    let top = remove_top q in
    top.alive <- false;
    q.live <- q.live - 1;
    Some (top.prio, top.value)
  end

let peek_min_prio q =
  skim q;
  if q.size = 0 then None else Some q.arr.(0).prio

let clear q =
  Array.fill q.arr 0 q.size (nil ());
  q.size <- 0;
  q.live <- 0
