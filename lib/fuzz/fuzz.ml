(* Seeded scenario fuzzer: build a random-but-reproducible server rig,
   run it with every conservation law armed, and report the first
   violation.  A scenario is a pure function of (seed, mode), so a failure
   found on any machine replays anywhere from its printed seed. *)

module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Rng = Engine.Rng
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Machine = Procsim.Machine
module Process = Procsim.Process
module Stack = Netsim.Stack
module Socket = Netsim.Socket
module Filter = Netsim.Filter
module Ipaddr = Netsim.Ipaddr

type server_model = Event | Threaded | Forked

let server_model_name = function
  | Event -> "event"
  | Threaded -> "threaded"
  | Forked -> "forked"

let mode_name = function
  | Stack.Softirq -> "softirq"
  | Stack.Lrp -> "lrp"
  | Stack.Rc -> "rc"

let mode_of_string = function
  | "softirq" -> Some Stack.Softirq
  | "lrp" -> Some Stack.Lrp
  | "rc" -> Some Stack.Rc
  | _ -> None

let all_modes = [ Stack.Softirq; Stack.Lrp; Stack.Rc ]

type outcome = {
  seed : int;
  mode : Stack.mode;
  cpus : int;  (** processors per machine *)
  machines : int;  (** 1 = single rig; > 1 = cluster behind the balancer *)
  scenario : string;  (** one-line description of the generated scenario *)
  zipf : bool;  (** the large-Zipf corpus family was forced *)
  checks : int;  (** invariant sweeps that ran *)
  completed : int;  (** client requests completed *)
  packets : int;  (** packets the stack processed *)
  established : int;
  injected : bool;  (** the deliberate mis-charge was planted *)
  violation : string option;  (** [None] = every law held *)
  trace_file : string option;  (** JSONL trace written on violation *)
}

let replay_command ?(inject = false) ?(cpus = 1) ?(machines = 1) ?(shards = 1)
    ?(zipf = false) ~mode ~seed () =
  Printf.sprintf "dune exec bin/rc_sim.exe -- fuzz --seed %d --mode %s%s%s%s%s%s" seed
    (mode_name mode)
    (if cpus > 1 then Printf.sprintf " --cpus %d" cpus else "")
    (if machines > 1 then Printf.sprintf " --machines %d" machines else "")
    (if shards > 1 then Printf.sprintf " --shards %d" shards else "")
    (if zipf then " --zipf" else "")
    (if inject then " --inject mischarge" else "")

(* The generated scenario, described so a violating run is understandable
   from its log line alone. *)
type scenario = {
  server : server_model;
  policy_desc : string;
  groups : int;
  clients_total : int;
  flood_rate : float option;
  duration : Simtime.span;
  check_interval : Simtime.span;
}

let scenario_summary s =
  Format.asprintf "%s/%s groups=%d clients=%d%s dur=%a check=%a"
    (server_model_name s.server)
    s.policy_desc s.groups s.clients_total
    (match s.flood_rate with
    | Some r -> Printf.sprintf " flood=%.0f/s" r
    | None -> "")
    Simtime.pp_span s.duration Simtime.pp_span s.check_interval

let doc_paths = [| "/doc/1k"; "/doc/8k"; "/doc/64k" |]

(* The cluster scenario family: N machines behind the balancer, random
   policy/tenants/profile, an optional SYN flood on a random machine, and
   every machine's registry armed — including the cluster-wide
   "cluster.usage-rollup" law that ties the per-machine tenant ledgers to
   the rollup totals.  Same contract as the single-rig path: the scenario
   is a pure function of (seed, mode); [cpus] and [machines] only change
   where the work lands, and [shards] must not change anything at all —
   the outcome record deliberately has no shards field, so running the
   same seed at different shard counts and comparing outcomes IS the
   sharded-determinism check. *)
let run_cluster_seed ~inject ~cpus ~machines ~shards ~mode ~seed () =
  let module Cluster = Clustersim.Cluster in
  let rng = Rng.create ~seed in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  let strict_before = Rescont.Usage.strict_memory_enabled () in
  Fun.protect
    ~finally:(fun () -> Rescont.Usage.set_strict_memory strict_before)
    (fun () ->
      let policy_desc, policy =
        pick
          [|
            ("round-robin", Cluster.Round_robin);
            ("least-conns", Cluster.Least_conns);
            ("flow-hash", Cluster.Flow_hash);
            ("replicate-2", Cluster.Replicate 2);
          |]
      in
      let tenant_count = 1 + Rng.int rng 2 in
      let tenants =
        List.init tenant_count (fun i ->
            Cluster.tenant_spec
              ~weight:(1 + Rng.int rng 3)
              ~attrs:(Attrs.timeshare ~priority:(10 + Rng.int rng 40) ())
              (Printf.sprintf "t%d" i))
      in
      let rate = float_of_int (500 + Rng.int rng 3_000) in
      let profile =
        if Rng.bool rng then
          Cluster.Spike
            { base = rate; peak = 3. *. rate; at = Simtime.ms 30; until = Simtime.ms 70 }
        else Cluster.Poisson rate
      in
      let flood_node = Rng.int rng machines in
      let flood_rate =
        if Rng.bool rng then Some (float_of_int (2_000 + Rng.int rng 20_000)) else None
      in
      let c =
        Cluster.create ~machines ~shards ~cpus ~mode ~policy ~profile ~tenants
          ~workers:(4 + Rng.int rng 12)
          ~seed:(Rng.int rng 1_000_000)
          ()
      in
      let attacker =
        Option.map
          (fun rate_per_sec ->
            Workload.Synflood.create ~stack:(Cluster.node_stack c flood_node) ~rate_per_sec ())
          flood_rate
      in
      let duration = Simtime.ms (80 + Rng.int rng 170) in
      let check_interval = Simtime.ms (2 + Rng.int rng 6) in
      Cluster.arm_invariants ~interval:check_interval c;
      (if inject then
         (* Same planted bug as the single rig, on a random machine: its
            cpu.conservation law must catch it at the next sweep. *)
         let detached = Container.create_detached ~name:"mischarge-sink" () in
         let victim = Cluster.node_machine c (Rng.int rng machines) in
         (* Scheduled on the victim's own event core: under sharding the
            balancer's sim is another shard, and a cross-shard schedule
            would both race and make the outcome depend on the shard
            count. *)
         ignore
           (Sim.after (Machine.sim victim)
              (Simtime.span_scale 0.5 duration)
              (fun () ->
                Machine.steal_time victim ~cost:(Simtime.us 50) ~charge:(`Container detached))));
      let violation =
        try
          Cluster.start c;
          Option.iter Workload.Synflood.start attacker;
          Cluster.run_for c duration;
          Cluster.stop_arrivals c;
          Option.iter Workload.Synflood.stop attacker;
          Cluster.run_for c (Simtime.ms 100);
          None
        with
        | Engine.Invariant.Violation v ->
            Some (Format.asprintf "%a" Engine.Invariant.pp_violation v)
        | Rescont.Usage.Negative_memory _ as e -> Some (Printexc.to_string e)
        | e -> Some ("unexpected exception: " ^ Printexc.to_string e)
      in
      let packets = ref 0 and established = ref 0 and checks = ref 0 in
      for i = 0 to machines - 1 do
        let s = Stack.stats (Cluster.node_stack c i) in
        packets := !packets + s.Stack.packets_processed;
        established := !established + s.Stack.conns_established;
        checks :=
          !checks + Engine.Invariant.checks_run (Machine.invariants (Cluster.node_machine c i))
      done;
      {
        seed;
        mode;
        cpus;
        machines;
        scenario =
          Format.asprintf "cluster/%s machines=%d tenants=%d rate=%.0f/s%s%s dur=%a check=%a%s"
            policy_desc machines tenant_count rate
            (match profile with Cluster.Spike _ -> " spike" | _ -> "")
            (match flood_rate with
            | Some r -> Printf.sprintf " flood=%.0f/s@%d" r flood_node
            | None -> "")
            Simtime.pp_span duration Simtime.pp_span check_interval
            (if cpus > 1 then Printf.sprintf " cpus=%d" cpus else "");
        zipf = false;
        checks = !checks;
        completed = Cluster.completed c;
        packets = !packets;
        established = !established;
        injected = inject;
        violation;
        trace_file = None;
      })

let rec run_seed ?(inject = false) ?(cpus = 1) ?(machines = 1) ?(shards = 1)
    ?(zipf = false) ?trace_path ~mode ~seed () =
  if cpus < 1 then invalid_arg "Fuzz.run_seed: cpus must be >= 1";
  if machines < 1 then invalid_arg "Fuzz.run_seed: machines must be >= 1";
  if shards < 1 then invalid_arg "Fuzz.run_seed: shards must be >= 1";
  if zipf && machines > 1 then
    invalid_arg "Fuzz.run_seed: the zipf corpus family is a single-rig scenario";
  if machines > 1 then run_cluster_seed ~inject ~cpus ~machines ~shards ~mode ~seed ()
  else run_single_seed ~inject ~cpus ~zipf ?trace_path ~mode ~seed ()

and run_single_seed ~inject ~cpus ~zipf ?trace_path ~mode ~seed () =
  let rng = Rng.create ~seed in
  let pick arr = arr.(Rng.int rng (Array.length arr)) in
  let strict_before = Rescont.Usage.strict_memory_enabled () in
  Fun.protect
    ~finally:(fun () -> Rescont.Usage.set_strict_memory strict_before)
    (fun () ->
      let sim = Sim.create () in
      let root = Container.create_root () in
      let invariants = Engine.Invariant.create () in
      (* Same policy constructor per run-queue shard; the generated
         scenario itself is a pure function of (seed, mode) — [cpus] only
         changes where its work lands, never the rng stream. *)
      let make_policy _cpu =
        match mode with
        | Stack.Rc -> Sched.Multilevel.make ~invariants ~root ()
        | Stack.Softirq | Stack.Lrp -> Sched.Timeshare.make ()
      in
      let policy = make_policy 0 in
      let trace = Engine.Tracelog.create ~enabled:true ~capacity:4096 () in
      let machine =
        if cpus > 1 then
          Machine.create ~cpus ~shard_policy:make_policy ~sim ~policy ~root ~invariants
            ~trace ()
        else Machine.create ~sim ~policy ~root ~invariants ~trace ()
      in
      let server_proc = Process.create machine ~name:"httpd" () in
      let stack =
        Stack.create ~machine ~mode
          ~queue_cap:(8 + Rng.int rng 120)
          ~owner:(Process.default_container server_proc)
          ()
      in
      (* The large-Zipf corpus family (--zipf): thousands of documents of
         heterogeneous size against a cache holding a small fraction of
         the corpus, so every run churns the arena's eviction path while
         cache.bytes-consistency (and the LRU-list structure check) sweep
         it.  All of its rng draws sit inside the branch: non-zipf seeds
         generate byte-for-byte the scenarios they always did. *)
      let zipf_corpus =
        if not zipf then None
        else begin
          let docs = 2_000 + Rng.int rng 8_000 in
          let s = pick [| 0.6; 0.9; 1.1 |] in
          let doc_bytes i = 256 * (1 + (i land 15)) in
          let corpus = ref 0 in
          for i = 0 to docs - 1 do
            corpus := !corpus + doc_bytes i
          done;
          let capacity_bytes = max 4096 (!corpus / (4 + Rng.int rng 12)) in
          let ids =
            Array.init docs (fun i ->
                Httpsim.Docset.intern (Printf.sprintf "/zipf/%d" i))
          in
          Some (docs, s, doc_bytes, capacity_bytes, ids, Rng.bool rng (* warm? *))
        end
      in
      let cache =
        match zipf_corpus with
        | None -> Httpsim.File_cache.create ()
        | Some (_, _, _, capacity_bytes, _, _) -> Httpsim.File_cache.create ~capacity_bytes ()
      in
      Httpsim.File_cache.register_invariants cache invariants;
      (match zipf_corpus with
      | None ->
          Array.iter
            (fun path ->
              let bytes =
                match path with
                | "/doc/1k" -> 1024
                | "/doc/8k" -> 8192
                | _ -> 65536
              in
              Httpsim.File_cache.add_document cache ~path ~bytes)
            doc_paths;
          Httpsim.File_cache.warm cache
      | Some (_, _, doc_bytes, _, ids, warm) ->
          Array.iteri
            (fun i id -> Httpsim.File_cache.add_doc cache ~doc:id ~bytes:(doc_bytes i))
            ids;
          if warm then Httpsim.File_cache.warm cache);
      let doc_mix =
        Option.map
          (fun (docs, s, _, _, ids, _) -> (Engine.Dist.zipf ~n:docs ~s, ids))
          zipf_corpus
      in
      (* --- scenario generation ------------------------------------- *)
      let server_model = pick [| Event; Threaded; Forked |] in
      let flood = Rng.bool rng in
      (* Listen sockets: a catch-all, plus sometimes a filtered high-
         priority class (VIP prefix 10.200/16) and, when flooding, the
         §4.8 defence — the attacker's prefix steered to an idle-class
         container. *)
      let vip_base = Ipaddr.v 10 200 0 1 in
      let listens = ref [ Socket.make_listen ~port:80 () ] in
      let with_vip = Rng.bool rng in
      if with_vip then begin
        let attrs =
          if Rng.bool rng then Attrs.timeshare ~priority:(50 + Rng.int rng 50) ()
          else Attrs.timeshare ~priority:40 ~memory_limit:((16 + Rng.int rng 48) * 1024) ()
        in
        let vip_cont = Container.create ~parent:root ~name:"vip" ~attrs () in
        listens :=
          Socket.make_listen ~port:80
            ~filter:(Filter.prefix ~template:(Ipaddr.v 10 200 0 0) ~bits:16)
            ~container:vip_cont ()
          :: !listens
      end;
      if flood && Rng.bool rng then begin
        let bin_attrs =
          let base = Attrs.timeshare ~priority:1 () in
          Attrs.with_priority base 0 (* idle class *)
        in
        let bin = Container.create ~parent:root ~name:"flood-bin" ~attrs:bin_attrs () in
        listens :=
          Socket.make_listen ~port:80
            ~filter:(Filter.prefix ~template:(Ipaddr.v 192 168 66 0) ~bits:24)
            ~container:bin ()
          :: !listens
      end;
      let policy_choices =
        [|
          ("none", Httpsim.Event_server.No_containers);
          ("inherit", Httpsim.Event_server.Inherit_listen);
          ( "per-conn",
            Httpsim.Event_server.Per_connection
              { parent = root; priority_of = (fun _ -> 5 + Rng.int rng 20) } );
        |]
      in
      let policy_desc, server_policy = pick policy_choices in
      (match server_model with
      | Event ->
          let api = pick [| Httpsim.Event_server.Select; Httpsim.Event_server.Event_api |] in
          let server =
            Httpsim.Event_server.create ~stack ~process:server_proc ~cache ~api
              ~policy:server_policy ~listens:!listens ()
          in
          ignore (Httpsim.Event_server.start server)
      | Threaded ->
          let server =
            Httpsim.Threaded_server.create ~stack ~process:server_proc ~cache
              ~workers:(2 + Rng.int rng 8) ~policy:server_policy ~listens:!listens ()
          in
          Httpsim.Threaded_server.start server
      | Forked ->
          let server =
            Httpsim.Forked_server.create ~stack ~master:server_proc ~cache
              ~workers:(2 + Rng.int rng 6) ~policy:server_policy ~listens:!listens ()
          in
          Httpsim.Forked_server.start server);
      (* Closed-loop client groups; the first sometimes sits inside the
         VIP prefix so filtered demux and container inheritance are hit. *)
      let groups = 1 + Rng.int rng 2 in
      let clients_total = ref 0 in
      let sclients =
        List.init groups (fun i ->
            let vip_group = i = 0 && with_vip && Rng.bool rng in
            let src_base = if vip_group then vip_base else Ipaddr.v 10 (1 + i) 0 1 in
            let count = 1 + Rng.int rng 6 in
            clients_total := !clients_total + count;
            let think = Simtime.us (Rng.int rng 2000) in
            Workload.Sclient.create ~stack
              ~name:(Printf.sprintf "g%d" i)
              ~src_base ~port:80
              ~path:doc_paths.(Rng.int rng (Array.length doc_paths))
              ?doc_mix
              ~persistent:(Rng.bool rng)
              ~requests_per_conn:(1 + Rng.int rng 16)
              ~think_time:think
              ~jitter:(Simtime.us (Rng.int rng 500))
              ~syn_timeout:(Simtime.ms (200 + Rng.int rng 800))
              ~seed:(Rng.int rng 1_000_000)
              ~count ())
      in
      let flood_rate =
        if flood then Some (float_of_int (2_000 + Rng.int rng 30_000)) else None
      in
      let attacker =
        Option.map
          (fun rate_per_sec ->
            let rng_opt = if Rng.bool rng then Some (Rng.split rng) else None in
            Workload.Synflood.create ~stack ?rng:rng_opt ~rate_per_sec ())
          flood_rate
      in
      let duration = Simtime.ms (80 + Rng.int rng 170) in
      let check_interval = Simtime.ms (1 + Rng.int rng 5) in
      let scenario =
        {
          server = server_model;
          policy_desc;
          groups;
          clients_total = !clients_total;
          flood_rate;
          duration;
          check_interval;
        }
      in
      (* --- arm, run, drain ------------------------------------------ *)
      Machine.arm_invariants ~interval:check_interval machine;
      (if inject then
         (* A §3.1-style accounting bug on demand: interrupt work charged
            to a container outside the root's subtree.  Machine busy time
            advances but the root rollup does not, so [cpu.conservation]
            must trip at the next sweep. *)
         let detached = Container.create_detached ~name:"mischarge-sink" () in
         ignore
           (Sim.after sim
              (Simtime.span_scale 0.5 duration)
              (fun () ->
                Machine.steal_time machine ~cost:(Simtime.us 50)
                  ~charge:(`Container detached))));
      let violation =
        try
          List.iter Workload.Sclient.start sclients;
          Option.iter Workload.Synflood.start attacker;
          Machine.run_until machine (Simtime.add Simtime.zero duration);
          List.iter Workload.Sclient.stop sclients;
          Option.iter Workload.Synflood.stop attacker;
          (* Drain: let in-flight packets, timers and closes settle, then
             the run_until quiesce sweep has the final word. *)
          Machine.run_until machine
            (Simtime.add Simtime.zero (Simtime.span_add duration (Simtime.ms 100)));
          None
        with
        | Engine.Invariant.Violation v ->
            Some (Format.asprintf "%a" Engine.Invariant.pp_violation v)
        | Rescont.Usage.Negative_memory _ as e -> Some (Printexc.to_string e)
        | e -> Some ("unexpected exception: " ^ Printexc.to_string e)
      in
      let trace_file =
        match violation with
        | None -> None
        | Some _ ->
            let path =
              match trace_path with
              | Some p -> p
              | None ->
                  Printf.sprintf "fuzz-%s-seed%d%s.trace.jsonl" (mode_name mode) seed
                    (if cpus > 1 then Printf.sprintf "-cpus%d" cpus else "")
            in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Engine.Tracelog.to_jsonl (Machine.trace machine)));
            Some path
      in
      let s = Stack.stats stack in
      {
        seed;
        mode;
        cpus;
        machines = 1;
        scenario =
          scenario_summary scenario
          ^ (match zipf_corpus with
            | Some (docs, s, _, cap, _, warm) ->
                Printf.sprintf " zipf docs=%d s=%.1f cap=%dKB%s" docs s (cap / 1024)
                  (if warm then " warm" else "")
            | None -> "")
          ^ (if cpus > 1 then Printf.sprintf " cpus=%d" cpus else "");
        zipf;
        checks = Engine.Invariant.checks_run invariants;
        completed = List.fold_left (fun acc c -> acc + Workload.Sclient.completed c) 0 sclients;
        packets = s.Stack.packets_processed;
        established = s.Stack.conns_established;
        injected = inject;
        violation;
        trace_file;
      })

let pp_outcome ppf o =
  match o.violation with
  | None ->
      Format.fprintf ppf "seed %-6d %-7s ok    checks=%d completed=%d packets=%d  [%s]" o.seed
        (mode_name o.mode) o.checks o.completed o.packets o.scenario
  | Some v ->
      Format.fprintf ppf
        "seed %-6d %-7s FAIL  %s@\n  scenario: %s@\n  replay:   %s%s" o.seed
        (mode_name o.mode) v o.scenario
        (replay_command ~inject:o.injected ~cpus:o.cpus ~machines:o.machines ~zipf:o.zipf
           ~mode:o.mode ~seed:o.seed ())
        (match o.trace_file with
        | Some f -> Printf.sprintf "\n  trace:    %s" f
        | None -> "")

let run_batch ?(inject = false) ?(cpus = 1) ?(machines = 1) ?(shards = 1) ?(zipf = false)
    ?(log = fun _ -> ()) ~modes ~seeds () =
  List.concat_map
    (fun seed ->
      List.map
        (fun mode ->
          let o = run_seed ~inject ~cpus ~machines ~shards ~zipf ~mode ~seed () in
          log o;
          o)
        modes)
    seeds
