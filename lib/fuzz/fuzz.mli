(** Seeded scenario fuzzer for the conservation-law invariants.

    Each run builds a randomised-but-reproducible server rig — a random
    container hierarchy with filtered listen sockets, one of the three
    server architectures (event-driven, thread pool, pre-forked), one of
    the three container policies, closed-loop client groups and an
    optional SYN flood — arms every registered conservation law
    ({!Procsim.Machine.arm_invariants}), drives it for a random duration,
    and reports the first violation.

    A scenario is a pure function of [(seed, mode)]: a failing seed
    replays bit-for-bit with the printed command on any machine, and the
    run's kernel trace is dumped as JSON lines next to it.

    With [machines > 1] the generated scenario is a cluster instead: N
    machines behind the {!Clustersim.Cluster} load balancer (random
    policy, tenants, arrival profile, optional SYN flood on a random
    machine), with every machine's registry — including the cluster-wide
    "cluster.usage-rollup" law — armed. *)

type server_model = Event | Threaded | Forked

val server_model_name : server_model -> string

val mode_name : Netsim.Stack.mode -> string
val mode_of_string : string -> Netsim.Stack.mode option

val all_modes : Netsim.Stack.mode list
(** [Softirq; Lrp; Rc]. *)

type outcome = {
  seed : int;
  mode : Netsim.Stack.mode;
  cpus : int;  (** processors per machine (1 = uniprocessor) *)
  machines : int;  (** 1 = single rig; > 1 = cluster behind the balancer *)
  scenario : string;  (** one-line description of the generated scenario *)
  zipf : bool;  (** the large-Zipf corpus family was forced *)
  checks : int;  (** invariant sweeps that ran *)
  completed : int;  (** client requests completed *)
  packets : int;  (** packets the stack processed *)
  established : int;
  injected : bool;  (** the deliberate mis-charge was planted *)
  violation : string option;  (** [None] = every law held *)
  trace_file : string option;  (** JSONL trace written on violation *)
}

val replay_command :
  ?inject:bool ->
  ?cpus:int ->
  ?machines:int ->
  ?shards:int ->
  ?zipf:bool ->
  mode:Netsim.Stack.mode ->
  seed:int ->
  unit ->
  string
(** The one-command replay line printed with a violation. *)

val run_seed :
  ?inject:bool ->
  ?cpus:int ->
  ?machines:int ->
  ?shards:int ->
  ?zipf:bool ->
  ?trace_path:string ->
  mode:Netsim.Stack.mode ->
  seed:int ->
  unit ->
  outcome
(** Run one scenario.  [inject] plants a deliberate accounting bug
    (interrupt time charged to a container outside the root's subtree)
    halfway through the run, which the [cpu.conservation] law must catch —
    the self-test that the checker checks.  [cpus] (default 1) runs the
    same scenario on an SMP machine with one run-queue shard per
    processor and RSS packet steering; the scenario generation is a pure
    function of [(seed, mode)] alone, so a given seed exercises the same
    workload at every CPU count.  [trace_path] overrides where the JSONL
    trace is written on violation (default
    [fuzz-<mode>-seed<seed>.trace.jsonl] in the working directory).
    [machines > 1] selects the cluster scenario family (no trace file is
    written — cluster machines run untraced).  [shards] (default 1,
    cluster family only) executes the cluster across that many event
    cores — deliberately absent from {!outcome}, because sharded
    execution is byte-identical by contract: the same seed at any shard
    count must produce the same outcome, and comparing them is exactly
    the determinism check the driver's CI stage performs.  [zipf]
    (default false, single-rig only) forces the large-Zipf corpus family:
    thousands of heterogeneous documents against a cache a fraction of
    the corpus size, clients on a Zipf doc mix, so the arena cache's
    eviction path churns under the armed [cache.bytes-consistency] and
    LRU-structure laws.  Restores the process-wide strict-memory flag on
    exit. *)

val pp_outcome : Format.formatter -> outcome -> unit

val run_batch :
  ?inject:bool ->
  ?cpus:int ->
  ?machines:int ->
  ?shards:int ->
  ?zipf:bool ->
  ?log:(outcome -> unit) ->
  modes:Netsim.Stack.mode list ->
  seeds:int list ->
  unit ->
  outcome list
(** Run every (seed, mode) pair at the given CPU count (default 1),
    calling [log] after each. *)
