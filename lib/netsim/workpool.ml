(* Free-list pool of deferred-protocol-work items, plus the intrusive
   per-container queues they wait on.

   The packet path used to allocate a fresh [W_syn]/[W_data] constructor
   (and, for LRP/RC, a [Queue.t] cons cell) per packet.  Here a work item
   is one mutable record reused for the life of the stack: acquire fills
   the fields, the intrusive [next] link threads it through a container's
   queue with no cells, and release returns it to the free list with its
   reference fields reset to pool-owned dummies (so a parked item never
   pins a dead connection or payload).  Steady-state packet processing
   therefore allocates near zero — the pool only grows when the in-flight
   population exceeds every previous peak.

   Items carry an explicit lifecycle state (free / in service / queued),
   and every transition checks it: double release, releasing a queued
   item, or a corrupted free list raise immediately rather than silently
   sharing one record between two packets.  The counters maintained here
   ([stats]) feed the [net.pool-consistency] invariant law:

     free + in_service + queued = allocated                (always)

   which the fuzzer arms, so a leak or double-free cannot survive a
   scenario unnoticed. *)

type kind = Syn | Ack | Data | Fin

type item = {
  mutable kind : kind;
  mutable src : Ipaddr.t; (* Syn *)
  mutable src_port : int; (* Syn *)
  mutable listen : Socket.listen option; (* Syn: early-demux result *)
  mutable client : Socket.client_handlers; (* Syn *)
  mutable completes : bool; (* Syn: a real client will ACK *)
  mutable conn : Socket.conn; (* Ack / Data / Fin; pool dummy otherwise *)
  mutable payload : Payload.t; (* Data; pool dummy otherwise *)
  mutable lifecycle : int; (* 0 free, 1 in service, 2 queued *)
  mutable next : item; (* free-list / queue link; [nil] terminated *)
}

type t = {
  nil : item; (* per-pool sentinel: end of every chain *)
  dummy_conn : Socket.conn;
  dummy_payload : Payload.t;
  mutable free_head : item;
  mutable allocated : int;
  mutable free : int;
  mutable in_service : int;
  mutable queued : int;
}

type queue = {
  pool : t;
  mutable head : item; (* pool.nil when empty *)
  mutable tail : item;
  mutable count : int;
}

let lifecycle_free = 0
let lifecycle_in_service = 1
let lifecycle_queued = 2

let create () =
  let dummy_conn =
    Socket.make_conn ~src:(Ipaddr.v 0 0 0 0) ~src_port:0 ~client:Socket.null_handlers
      ~now:Engine.Simtime.zero
  in
  let dummy_payload = Payload.make ~bytes:0 Engine.Simtime.zero in
  let rec nil =
    {
      kind = Syn;
      src = Ipaddr.v 0 0 0 0;
      src_port = 0;
      listen = None;
      client = Socket.null_handlers;
      completes = false;
      conn = dummy_conn;
      payload = dummy_payload;
      lifecycle = -1;
      next = nil;
    }
  in
  {
    nil;
    dummy_conn;
    dummy_payload;
    free_head = nil;
    allocated = 0;
    free = 0;
    in_service = 0;
    queued = 0;
  }

let stats t = (t.allocated, t.free, t.in_service, t.queued)

let acquire t =
  if t.free_head == t.nil then begin
    let item =
      {
        kind = Syn;
        src = Ipaddr.v 0 0 0 0;
        src_port = 0;
        listen = None;
        client = Socket.null_handlers;
        completes = false;
        conn = t.dummy_conn;
        payload = t.dummy_payload;
        lifecycle = lifecycle_in_service;
        next = t.nil;
      }
    in
    t.allocated <- t.allocated + 1;
    t.in_service <- t.in_service + 1;
    item
  end
  else begin
    let item = t.free_head in
    if item.lifecycle <> lifecycle_free then
      invalid_arg "Workpool.acquire: free list holds a non-free item";
    t.free_head <- item.next;
    item.next <- t.nil;
    item.lifecycle <- lifecycle_in_service;
    t.free <- t.free - 1;
    t.in_service <- t.in_service + 1;
    item
  end

let release t item =
  if item.lifecycle = lifecycle_free then invalid_arg "Workpool.release: double free";
  if item.lifecycle = lifecycle_queued then
    invalid_arg "Workpool.release: item is still queued";
  item.lifecycle <- lifecycle_free;
  (* Reset reference fields so a parked item retains nothing. *)
  item.listen <- None;
  item.client <- Socket.null_handlers;
  item.conn <- t.dummy_conn;
  item.payload <- t.dummy_payload;
  item.next <- t.free_head;
  t.free_head <- item;
  t.free <- t.free + 1;
  t.in_service <- t.in_service - 1

(* {2 Intrusive queues} *)

let queue_create pool = { pool; head = pool.nil; tail = pool.nil; count = 0 }
let queue_length q = q.count
let queue_is_empty q = q.count = 0

let push q item =
  if item.lifecycle <> lifecycle_in_service then
    invalid_arg "Workpool.push: item is not in service";
  item.lifecycle <- lifecycle_queued;
  item.next <- q.pool.nil;
  if q.head == q.pool.nil then q.head <- item else q.tail.next <- item;
  q.tail <- item;
  q.count <- q.count + 1;
  q.pool.in_service <- q.pool.in_service - 1;
  q.pool.queued <- q.pool.queued + 1

let pop q =
  if q.head == q.pool.nil then None
  else begin
    let item = q.head in
    q.head <- item.next;
    if q.head == q.pool.nil then q.tail <- q.pool.nil;
    item.next <- q.pool.nil;
    item.lifecycle <- lifecycle_in_service;
    q.count <- q.count - 1;
    q.pool.queued <- q.pool.queued - 1;
    q.pool.in_service <- q.pool.in_service + 1;
    Some item
  end

let queue_iter q f =
  let rec walk item =
    if item != q.pool.nil then begin
      f item;
      walk item.next
    end
  in
  walk q.head

(* Structural audit used by the pool-consistency law: the linked length
   of each queue must match its counter, and every linked item must be in
   the queued lifecycle state. *)
let queue_validate q =
  let n = ref 0 in
  let ok = ref true in
  queue_iter q (fun item ->
      incr n;
      if item.lifecycle <> lifecycle_queued then ok := false);
  !ok && !n = q.count
