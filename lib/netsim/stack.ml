module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Machine = Procsim.Machine
module Container = Rescont.Container
module Usage = Rescont.Usage
module Attrs = Rescont.Attrs

type mode = Softirq | Lrp | Rc

type costs = {
  irq_per_packet : Simtime.span;
  demux : Simtime.span;
  syn_process : Simtime.span;
  ack_process : Simtime.span;
  data_rx_process : Simtime.span;
  fin_process : Simtime.span;
  tx_per_packet : Simtime.span;
  conn_teardown : Simtime.span;
}

let default_costs =
  {
    irq_per_packet = Simtime.ns 2_500;
    demux = Simtime.ns 1_400;
    syn_process = Simtime.us 95;
    ack_process = Simtime.us 15;
    data_rx_process = Simtime.us 20;
    fin_process = Simtime.us 15;
    tx_per_packet = Simtime.us 25;
    conn_teardown = Simtime.us 30;
  }

type stats = {
  mutable syns_received : int;
  mutable syn_queue_drops : int;
  mutable accept_queue_drops : int;
  mutable rx_queue_drops : int;
  mutable packets_processed : int;
  mutable conns_established : int;
  mutable conns_closed : int;
  mutable refused : int;
}

(* A packet as it comes off the wire; the listen socket for a SYN is
   resolved by the early demultiplexer at arrival time. *)
type packet =
  | P_syn of { src : Ipaddr.t; src_port : int; port : int; client : Socket.client_handlers;
               completes : bool }
  | P_ack of Socket.conn
  | P_data of Socket.conn * Payload.t
  | P_fin of Socket.conn

(* A demultiplexed unit of deferred protocol work. *)
type work =
  | W_syn of { src : Ipaddr.t; src_port : int; listen : Socket.listen option;
               client : Socket.client_handlers; completes : bool }
  | W_ack of Socket.conn
  | W_data of Socket.conn * Payload.t
  | W_fin of Socket.conn

type softirq_charge = Charge_current | Charge_system

type t = {
  machine : Machine.t;
  mode : mode;
  costs : costs;
  mtu : int;
  latency : Simtime.span;
  link_bytes_per_ns : float;
  queue_cap : int;
  syn_timeout : Simtime.span;
  softirq_charge : softirq_charge;
  owner : Container.t;
  mutable listen_sockets : Socket.listen list;
  mutable on_event : unit -> unit;
  mutable on_syn_drop : Socket.listen -> Ipaddr.t -> unit;
  queues : (int, work Queue.t * Container.t) Hashtbl.t;
  served_stamp : (int, int) Hashtbl.t; (* container id -> last service tick *)
  mutable service_tick : int;
  mutable pending : int;
  mutable services : service list; (* specific first, catch-all last *)
  mutable conns : Socket.conn list; (* every connection this stack created *)
  mutable conns_since_prune : int;
  stats : stats;
}

(* One per-process network kernel thread (paper §5.1): it services the
   deferred-processing queues of the containers it covers, in container
   priority order, binding itself to each packet's container. *)
and service = {
  svc_name : string;
  svc_covers : Container.t -> bool;
  svc_wq : Machine.Waitq.t;
  svc_home : Container.t;
  mutable svc_busy : bool;
  mutable svc_thread : Machine.thread option;
}

let machine t = t.machine
let mode t = t.mode
let stats t = t.stats
let costs t = t.costs
let latency t = t.latency
(* Listeners chain: several server applications may share one stack (e.g.
   virtual hosting), and each adds its own wakeup. *)
let add_on_event t f =
  let previous = t.on_event in
  t.on_event <-
    (fun () ->
      previous ();
      f ())

let set_on_event = add_on_event
let set_on_syn_drop t f = t.on_syn_drop <- f
let pending_work t = t.pending
let queue_table_size t = Hashtbl.length t.queues
let stamp_table_size t = Hashtbl.length t.served_stamp

(* Wire time of a payload on the access link: propagation plus
   serialisation at the link rate (a 4 MB response takes ~1/3 s on the
   paper's 100 Mbps Fast Ethernet, however fast the CPU). *)
let delivery_delay t payload =
  let transfer_ns =
    int_of_float (Float.round (float_of_int payload.Payload.bytes /. t.link_bytes_per_ns))
  in
  Simtime.span_add t.latency (Simtime.span_of_ns transfer_ns)

(* Schedule a client-bound event no earlier than everything already sent
   on this connection: per-connection FIFO, like TCP. *)
let schedule_to_client t conn delay f =
  let current = Machine.now t.machine in
  let target = Simtime.max (Simtime.add current delay) conn.Socket.last_delivery in
  conn.Socket.last_delivery <- target;
  ignore (Sim.at (Machine.sim t.machine) target f)
let listens t = t.listen_sockets
let now t = Machine.now t.machine

let tracing t = Engine.Tracelog.enabled (Machine.trace t.machine)
let tell t ev = Engine.Tracelog.event (Machine.trace t.machine) (now t) ev

let add_listen t l = t.listen_sockets <- l :: t.listen_sockets

let remove_listen t l =
  t.listen_sockets <-
    List.filter (fun l' -> l'.Socket.listen_id <> l.Socket.listen_id) t.listen_sockets

(* Most-specific-filter demultiplex (paper §4.8).  A single fold replaces
   the sort-and-take-head: [compare_specificity] ranks the more specific
   filter first (negative result), and ties break to the earliest-bound
   socket (lowest listen id), so overlapping filters of equal specificity
   demultiplex identically whatever order the listens were added in —
   [listen_sockets] is newest-first, which the old head-of-sort leaked
   through OCaml's unstable [List.sort]. *)
let demux_listen t ~port ~src =
  List.fold_left
    (fun best l ->
      if l.Socket.port <> port || not (Filter.matches l.Socket.filter src) then best
      else
        match best with
        | None -> Some l
        | Some b ->
            let c = Filter.compare_specificity l.Socket.filter b.Socket.filter in
            if c < 0 || (c = 0 && l.Socket.listen_id < b.Socket.listen_id) then Some l
            else best)
    None t.listen_sockets

let cost_of_work t = function
  | W_syn _ -> t.costs.syn_process
  | W_ack _ -> t.costs.ack_process
  | W_data (_, payload) ->
      Simtime.span_scale (float_of_int (Payload.packet_count ~mtu:t.mtu payload))
        t.costs.data_rx_process
  | W_fin _ -> t.costs.fin_process

let container_of_work t work =
  match t.mode with
  | Lrp | Softirq -> (
      (* LRP charges the receiving process; connection-level containers are
         an RC-only concept. *)
      match work with
      | W_syn _ | W_ack _ | W_data _ | W_fin _ -> t.owner)
  | Rc -> (
      match work with
      | W_syn { listen = Some l; _ } -> (
          match l.Socket.listen_container with Some c -> c | None -> t.owner)
      | W_syn { listen = None; _ } -> t.owner
      | W_ack conn | W_data (conn, _) | W_fin conn ->
          Socket.conn_container_or conn ~default:t.owner)

let is_idle_class container = Attrs.is_idle_class (Container.attrs container)

(* The principal that owns a connection's buffered bytes.  Resolved once
   and stamped on the connection: charge and refund must hit the same
   container even if the connection is rebound in between
   ([Socket.bind_container] moves the stamped charge with the binding). *)
let rx_memory_container t conn =
  match conn.Socket.rx_mem_owner with
  | Some owner -> owner
  | None ->
      let owner =
        match t.mode with
        | Lrp | Softirq -> t.owner
        | Rc -> Socket.conn_container_or conn ~default:t.owner
      in
      conn.Socket.rx_mem_owner <- Some owner;
      owner

(* Memory-limit enforcement (the [memory_limit] attribute, §4.1): buffered
   socket memory held anywhere on the container's parent chain must stay
   under the tightest limit, or the incoming data is discarded — back-
   pressure by early drop, like the per-container packet queues. *)
let memory_limit_exceeded container ~extra =
  let rec check node =
    (match (Container.attrs node).Attrs.memory_limit with
    | Some limit -> Usage.memory_bytes (Container.subtree_usage node) + extra > limit
    | None -> false)
    || match Container.parent node with Some p -> check p | None -> false
  in
  check container

let schedule t delay f = ignore (Sim.after (Machine.sim t.machine) delay f)

(* Lazily purge SYN-queue entries that completed, died, or timed out.  A
   timed-out half-open connection is a drop like any other: it counts
   against the listener and the stack, and fires the drop callback, so SYN
   flood damage is visible whether entries die by eviction or by timeout. *)
let purge_syn_queue t l =
  let rec purge () =
    match Queue.peek_opt l.Socket.syn_queue with
    | Some conn when conn.Socket.state <> Socket.Syn_rcvd ->
        ignore (Queue.pop l.Socket.syn_queue);
        purge ()
    | Some conn
      when Simtime.span_compare (Simtime.diff (now t) conn.Socket.syn_arrival) t.syn_timeout > 0
      ->
        ignore (Queue.pop l.Socket.syn_queue);
        conn.Socket.state <- Socket.Closed;
        l.Socket.syn_drops <- l.Socket.syn_drops + 1;
        t.stats.syn_queue_drops <- t.stats.syn_queue_drops + 1;
        if tracing t then
          tell t
            (Engine.Trace_event.Syn_drop
               {
                 listen = l.Socket.listen_id;
                 src = Ipaddr.to_string conn.Socket.src;
                 reason = Engine.Trace_event.Timeout;
               });
        t.on_syn_drop l conn.Socket.src;
        purge ()
    | Some _ | None -> ()
  in
  purge ()

(* Evict the oldest half-open connection to make room (drop-oldest). *)
let evict_syn t l =
  let rec evict () =
    if Queue.length l.Socket.syn_queue >= l.Socket.syn_backlog then begin
      match Queue.take_opt l.Socket.syn_queue with
      | None -> ()
      | Some victim ->
          if victim.Socket.state = Socket.Syn_rcvd then begin
            victim.Socket.state <- Socket.Closed;
            l.Socket.syn_drops <- l.Socket.syn_drops + 1;
            t.stats.syn_queue_drops <- t.stats.syn_queue_drops + 1;
            if tracing t then
              tell t
                (Engine.Trace_event.Syn_drop
                   {
                     listen = l.Socket.listen_id;
                     src = Ipaddr.to_string victim.Socket.src;
                     reason = Engine.Trace_event.Overflow;
                   });
            t.on_syn_drop l victim.Socket.src
          end;
          evict ()
    end
  in
  evict ()

(* Connection registry: the source of truth the memory-conservation
   invariant sums buffered rx bytes over.  Closed connections are pruned
   amortised (every 256 creations) so the list tracks live traffic, not
   history. *)
let prune_conns t =
  t.conns <- List.filter (fun c -> c.Socket.state <> Socket.Closed) t.conns

let track_conn t conn =
  t.conns <- conn :: t.conns;
  t.conns_since_prune <- t.conns_since_prune + 1;
  if t.conns_since_prune >= 256 then begin
    t.conns_since_prune <- 0;
    prune_conns t
  end

let buffered_rx_bytes t =
  List.fold_left
    (fun acc conn ->
      Queue.fold (fun a p -> a + p.Payload.bytes) acc conn.Socket.rx_queue)
    0 t.conns

(* Container teardown (§4.6): drop the per-container deferred-processing
   queue and service stamp, or both tables grow forever under per-connection
   container churn.  Work still queued for the dead principal is discarded
   like an early drop — no further CPU will be spent on it. *)
let forget_container t container =
  let cid = Container.id container in
  (match Hashtbl.find_opt t.queues cid with
  | Some (q, _) ->
      let dropped = Queue.length q in
      if dropped > 0 then begin
        t.pending <- t.pending - dropped;
        t.stats.rx_queue_drops <- t.stats.rx_queue_drops + dropped
      end;
      Hashtbl.remove t.queues cid
  | None -> ());
  Hashtbl.remove t.served_stamp cid

(* The protocol action itself; its CPU cost has already been consumed by
   the caller (softirq steal or network kernel thread). *)
let rec perform t work =
  t.stats.packets_processed <- t.stats.packets_processed + 1;
  let charge_rx container packets bytes = Container.charge_rx container ~packets ~bytes in
  match work with
  | W_syn { listen = None; client; _ } ->
      t.stats.refused <- t.stats.refused + 1;
      schedule t t.latency (fun () -> client.Socket.on_refused ())
  | W_syn { src; src_port; listen = Some l; client; completes } ->
      if tracing t then
        tell t
          (Engine.Trace_event.Net_syn
             { src = Ipaddr.to_string src; listen = l.Socket.listen_id });
      purge_syn_queue t l;
      evict_syn t l;
      let conn = Socket.make_conn ~src ~src_port ~client ~now:(now t) in
      track_conn t conn;
      conn.Socket.listen <- Some l;
      Queue.push conn l.Socket.syn_queue;
      charge_rx (container_of_work t work) 1 40;
      (* SYN|ACK goes out; a real client ACKs one round trip later. *)
      if completes then
        schedule t (Simtime.span_add t.latency t.latency) (fun () -> arrival t (P_ack conn))
  | W_ack conn ->
      charge_rx (container_of_work t work) 1 40;
      if conn.Socket.state = Socket.Syn_rcvd then begin
        match conn.Socket.listen with
        | None -> conn.Socket.state <- Socket.Closed
        | Some l ->
            if Queue.length l.Socket.accept_queue >= l.Socket.backlog then begin
              (* Dropped silently, as 1990s BSD-derived stacks did: the
                 client finds out via its retransmission timer. *)
              conn.Socket.state <- Socket.Closed;
              l.Socket.accept_drops <- l.Socket.accept_drops + 1;
              t.stats.accept_queue_drops <- t.stats.accept_queue_drops + 1;
              if tracing t then
                tell t
                  (Engine.Trace_event.Accept_drop
                     { listen = l.Socket.listen_id; conn = conn.Socket.conn_id })
            end
            else begin
              conn.Socket.state <- Socket.Established;
              if tracing t then
                tell t
                  (Engine.Trace_event.Net_established
                     { conn = conn.Socket.conn_id; src = Ipaddr.to_string conn.Socket.src });
              Queue.push conn l.Socket.accept_queue;
              t.stats.conns_established <- t.stats.conns_established + 1;
              t.on_event ();
              schedule t t.latency (fun () ->
                  conn.Socket.client.Socket.on_established conn)
            end
      end
  | W_data (conn, payload) ->
      let container = container_of_work t work in
      charge_rx container (Payload.packet_count ~mtu:t.mtu payload) payload.Payload.bytes;
      if conn.Socket.state = Socket.Established then begin
        let owner = rx_memory_container t conn in
        if memory_limit_exceeded owner ~extra:payload.Payload.bytes then begin
          (* Buffer memory exhausted for this principal: drop the data;
             the client's retransmission machinery will retry. *)
          t.stats.rx_queue_drops <- t.stats.rx_queue_drops + 1;
          if tracing t then
            tell t
              (Engine.Trace_event.Rx_discard
                 {
                   cid = Container.id owner;
                   container = Container.name owner;
                   bytes = payload.Payload.bytes;
                 })
        end
        else begin
          (* Buffered data occupies socket-buffer memory until the
             application reads it (§4.4). *)
          Container.charge_memory owner payload.Payload.bytes;
          Queue.push payload conn.Socket.rx_queue;
          t.on_event ()
        end
      end
  | W_fin conn ->
      charge_rx (container_of_work t work) 1 40;
      (match conn.Socket.state with
      | Socket.Established ->
          conn.Socket.state <- Socket.Close_wait;
          t.on_event ()
      | Socket.Syn_rcvd | Socket.Close_wait | Socket.Closed -> ())

(* Deferred-processing queues, one per container (RC) or one for the owner
   process (LRP). *)
and queue_for t container =
  let cid = Container.id container in
  match Hashtbl.find_opt t.queues cid with
  | Some (q, _) -> q
  | None ->
      let q = Queue.create () in
      (* Only live containers get a tracked queue: a service thread that
         kept a reference across the teardown would otherwise resurrect the
         table entry with no hook left to prune it — a leak per churned
         container.  The untracked queue is a harmless sink. *)
      if not (Container.is_destroyed container) then begin
        Hashtbl.replace t.queues cid (q, container);
        Container.on_destroy container (fun c -> forget_container t c)
      end;
      q

and best_pending t ~covers ~allow_idle =
  (* Highest container priority wins; equal priorities are served
     least-recently-first so no container can starve its peers. *)
  let stamp c =
    match Hashtbl.find_opt t.served_stamp (Container.id c) with Some s -> s | None -> -1
  in
  Hashtbl.fold
    (fun _ (q, c) acc ->
      if Queue.is_empty q then acc
      else if not (covers c) then acc
      else if (not allow_idle) && is_idle_class c then acc
      else
        let prio = Attrs.effective_net_priority (Container.attrs c) in
        match acc with
        | Some (best, best_prio)
          when best_prio > prio || (best_prio = prio && stamp best <= stamp c) ->
            acc
        | Some _ | None -> Some (c, prio))
    t.queues None

and service_for t container =
  let rec find = function
    | [] -> None
    | svc :: rest -> if svc.svc_covers container then Some svc else find rest
  in
  find t.services

and service_has_work t svc =
  Hashtbl.fold
    (fun _ (q, c) acc -> acc || ((not (Queue.is_empty q)) && svc.svc_covers c))
    t.queues false

and pick_work t svc =
  (* Running tasks are dequeued from the policy while on a processor, so a
     positive count means someone other than this thread wants the CPU. *)
  let machine_otherwise_busy = Machine.runnable_tasks t.machine > 0 in
  let choice =
    match
      best_pending t ~covers:svc.svc_covers ~allow_idle:(not machine_otherwise_busy)
    with
    | Some (c, _) -> Some c
    | None -> None
  in
  match choice with
  | None -> None
  | Some container -> (
      let q = queue_for t container in
      match Queue.take_opt q with
      | None -> None
      | Some work ->
          t.pending <- t.pending - 1;
          t.service_tick <- t.service_tick + 1;
          Hashtbl.replace t.served_stamp (Container.id container) t.service_tick;
          if tracing t then
            tell t
              (Engine.Trace_event.Net_dequeue
                 {
                   cid = Container.id container;
                   container = Container.name container;
                   depth = Queue.length q;
                 });
          Some (container, work))

and enqueue_work t work =
  let container = container_of_work t work in
  if Container.is_destroyed container then
    (* The principal died between demux and enqueue: discard like any
       early drop — an untracked queue would strand the pending count. *)
    t.stats.rx_queue_drops <- t.stats.rx_queue_drops + 1
  else
  let q = queue_for t container in
  if Queue.length q >= t.queue_cap then begin
    (* Early discard at interrupt level: the whole point of LRP/RC under
       overload — no further CPU is spent on this packet. *)
    if tracing t then
      tell t
        (Engine.Trace_event.Early_discard
           {
             cid = Container.id container;
             container = Container.name container;
             depth = Queue.length q;
           });
    t.stats.rx_queue_drops <- t.stats.rx_queue_drops + 1
  end
  else begin
    Queue.push work q;
    t.pending <- t.pending + 1;
    if tracing t then
      tell t
        (Engine.Trace_event.Net_enqueue
           {
             cid = Container.id container;
             container = Container.name container;
             depth = Queue.length q;
           });
    (* Make the covering network kernel thread runnable at the priority of
       its best pending container (paper §4.7). *)
    match service_for t container with
    | Some svc ->
        if not svc.svc_busy then begin
          (match (svc.svc_thread, best_pending t ~covers:svc.svc_covers ~allow_idle:true) with
          | Some kthread, Some (best, _) when t.mode = Rc ->
              Machine.rebind t.machine kthread best
          | (Some _ | None), (Some _ | None) -> ());
          Machine.Waitq.signal svc.svc_wq
        end
    | None -> ()
  end

and arrival t packet =
  let work =
    match packet with
    | P_syn { src; src_port; port; client; completes } ->
        t.stats.syns_received <- t.stats.syns_received + 1;
        W_syn { src; src_port; listen = demux_listen t ~port ~src; client; completes }
    | P_ack conn -> W_ack conn
    | P_data (conn, payload) -> W_data (conn, payload)
    | P_fin conn -> W_fin conn
  in
  let irq = Simtime.span_add t.costs.irq_per_packet t.costs.demux in
  match t.mode with
  | Softirq ->
      (* Interrupt + softirq protocol processing, immediately, above all
         threads.  Charged per §3.2 either to the unlucky principal running
         at the time, or (default, matching Digital UNIX's behaviour as
         measured in Fig. 13) to no process at all. *)
      let charge =
        match t.softirq_charge with
        | Charge_current -> `Current_or_system
        | Charge_system -> `Container (Machine.system_container t.machine)
      in
      Machine.steal_time t.machine
        ~cost:(Simtime.span_add irq (cost_of_work t work))
        ~charge;
      perform t work
  | Lrp | Rc ->
      Machine.steal_time t.machine ~cost:irq
        ~charge:(`Container (Machine.system_container t.machine));
      enqueue_work t work

let kthread_body t svc () =
  let self = Machine.self () in
  (* Once bound to a container, drain its whole queue before moving on:
     hopping containers costs a scheduling turn per packet, and queues are
     bounded so no peer waits more than [queue_cap] packets.  Idle-class
     queues are drained one packet at a time so regular work can reclaim
     the thread between packets. *)
  let rec drain container =
    if not (is_idle_class container && Machine.runnable_tasks t.machine > 0) then begin
      match Queue.take_opt (queue_for t container) with
      | None -> ()
      | Some work ->
          t.pending <- t.pending - 1;
          t.service_tick <- t.service_tick + 1;
          Hashtbl.replace t.served_stamp (Container.id container) t.service_tick;
          if tracing t then
            tell t
              (Engine.Trace_event.Net_dequeue
                 {
                   cid = Container.id container;
                   container = Container.name container;
                   depth = Queue.length (queue_for t container);
                 });
          Machine.cpu ~kernel:true (cost_of_work t work);
          perform t work;
          if not (is_idle_class container) then drain container
    end
  in
  let rec loop () =
    match pick_work t svc with
    | Some (container, work) ->
        svc.svc_busy <- true;
        if t.mode = Rc then Machine.rebind t.machine self container
        else Machine.rebind t.machine self svc.svc_home;
        Machine.cpu ~kernel:true (cost_of_work t work);
        perform t work;
        drain container;
        svc.svc_busy <- false;
        loop ()
    | None ->
        svc.svc_busy <- false;
        Machine.Waitq.wait svc.svc_wq;
        loop ()
  in
  loop ()

let spawn_service t ~name ~home ~covers =
  match t.mode with
  | Softirq -> None
  | Lrp | Rc ->
      let svc =
        {
          svc_name = name;
          svc_covers = covers;
          svc_wq = Machine.Waitq.create ~name t.machine;
          svc_home = home;
          svc_busy = false;
          svc_thread = None;
        }
      in
      let thread = Machine.spawn t.machine ~kernel:true ~name ~container:home (kthread_body t svc) in
      svc.svc_thread <- Some thread;
      Some svc

let add_service t ~name ~home ~covers =
  match spawn_service t ~name ~home ~covers with
  | Some svc -> t.services <- svc :: t.services
  | None -> ()

let create ?(mtu = 1460) ?(latency = Simtime.us 150) ?(costs = default_costs)
    ?(link_mbps = 100.) ?(queue_cap = 64) ?(syn_timeout = Simtime.sec 75)
    ?(softirq_charge = Charge_system) ~machine ~mode ~owner () =
  if link_mbps <= 0. then invalid_arg "Stack.create: link rate must be positive";
  let t =
    {
      machine;
      mode;
      costs;
      mtu;
      latency;
      link_bytes_per_ns = link_mbps *. 1e6 /. 8. /. 1e9;
      queue_cap;
      syn_timeout;
      softirq_charge;
      owner;
      listen_sockets = [];
      on_event = (fun () -> ());
      on_syn_drop = (fun _ _ -> ());
      queues = Hashtbl.create 64;
      served_stamp = Hashtbl.create 64;
      service_tick = 0;
      pending = 0;
      services = [];
      conns = [];
      conns_since_prune = 0;
      stats =
        {
          syns_received = 0;
          syn_queue_drops = 0;
          accept_queue_drops = 0;
          rx_queue_drops = 0;
          packets_processed = 0;
          conns_established = 0;
          conns_closed = 0;
          refused = 0;
        };
    }
  in
  (* Expose the stack's counters as pull gauges over the live stats record:
     exported values agree with the in-process view by construction. *)
  let registry = Machine.metrics machine in
  let s = t.stats in
  let expose name read = Engine.Metrics.gauge registry name (fun () -> float_of_int (read ())) in
  expose "net.syns_received" (fun () -> s.syns_received);
  expose "net.syn_queue_drops" (fun () -> s.syn_queue_drops);
  expose "net.accept_queue_drops" (fun () -> s.accept_queue_drops);
  expose "net.rx_queue_drops" (fun () -> s.rx_queue_drops);
  expose "net.packets_processed" (fun () -> s.packets_processed);
  expose "net.conns_established" (fun () -> s.conns_established);
  expose "net.conns_closed" (fun () -> s.conns_closed);
  expose "net.refused" (fun () -> s.refused);
  expose "net.pending_work" (fun () -> t.pending);
  (* Conservation laws over the stack's queues and socket-buffer memory.
     The memory law assumes one stack per machine — true of every rig here
     (Net attaches each stack to its own machine) — so it is registered
     once per registry. *)
  let module I = Engine.Invariant in
  let inv = Machine.invariants machine in
  if not (List.mem "net.pending-consistency" (I.names inv)) then begin
    I.register inv ~law:"net.pending-consistency" (fun () ->
        let queued = Hashtbl.fold (fun _ (q, _) acc -> acc + Queue.length q) t.queues 0 in
        I.equal_int ~what:"queued deferred packets vs stack pending counter" queued t.pending);
    I.register inv ~law:"net.queue-bounds" (fun () ->
        let rec scan = function
          | [] -> Ok ()
          | l :: rest -> (
              let what kind =
                Printf.sprintf "listen #%d %s queue" l.Socket.listen_id kind
              in
              match
                I.leq_int ~what:(what "syn") (Queue.length l.Socket.syn_queue)
                  l.Socket.syn_backlog
              with
              | Error _ as e -> e
              | Ok () -> (
                  match
                    I.leq_int ~what:(what "accept")
                      (Queue.length l.Socket.accept_queue)
                      l.Socket.backlog
                  with
                  | Error _ as e -> e
                  | Ok () -> scan rest))
        in
        scan t.listen_sockets);
    I.register inv ~law:"net.memory-conservation" (fun () ->
        prune_conns t;
        I.equal_int ~what:"buffered rx bytes vs root-subtree memory_bytes"
          (buffered_rx_bytes t)
          (Rescont.Usage.memory_bytes
             (Container.subtree_usage (Machine.root machine))))
  end;
  (match mode with
  | Softirq -> ()
  | Lrp | Rc ->
      add_service t ~name:"netisr" ~home:owner ~covers:(fun _ -> true);
      (* Idle-class protocol processing runs only when the CPU would
         otherwise idle (paper §4.8). *)
      Machine.set_on_idle machine (fun () ->
          List.iter
            (fun svc ->
              if (not svc.svc_busy) && service_has_work t svc then
                Machine.Waitq.signal svc.svc_wq)
            t.services));
  t

let accept t l =
  let rec pop () =
    match Queue.take_opt l.Socket.accept_queue with
    | None -> None
    | Some conn ->
        if conn.Socket.state = Socket.Closed then pop () else Some conn
  in
  ignore t;
  pop ()

let recv t conn =
  match Queue.take_opt conn.Socket.rx_queue with
  | None -> None
  | Some payload ->
      Container.charge_memory (rx_memory_container t conn) (-payload.Payload.bytes);
      Some payload

let send t conn payload =
  let packets = Payload.packet_count ~mtu:t.mtu payload in
  Machine.cpu ~kernel:true (Simtime.span_scale (float_of_int packets) t.costs.tx_per_packet);
  (match conn.Socket.container with
  | Some c -> Container.charge_tx c ~packets ~bytes:payload.Payload.bytes
  | None -> Container.charge_tx t.owner ~packets ~bytes:payload.Payload.bytes);
  if conn.Socket.state = Socket.Established || conn.Socket.state = Socket.Close_wait then
    schedule_to_client t conn (delivery_delay t payload) (fun () ->
        conn.Socket.client.Socket.on_response conn payload)

let close t conn =
  if conn.Socket.state <> Socket.Closed then begin
    Machine.cpu ~kernel:true
      (Simtime.span_add t.costs.fin_process t.costs.conn_teardown);
    conn.Socket.state <- Socket.Closed;
    (* Unread buffered data still occupies socket-buffer memory charged to
       the owning container; tearing the connection down frees the buffers,
       so the charge must be credited back or the principal leaks memory
       accounting with every abandoned connection. *)
    let refunded = ref 0 in
    Queue.iter (fun p -> refunded := !refunded + p.Payload.bytes) conn.Socket.rx_queue;
    Queue.clear conn.Socket.rx_queue;
    if !refunded > 0 then Container.charge_memory (rx_memory_container t conn) (- !refunded);
    t.stats.conns_closed <- t.stats.conns_closed + 1;
    if tracing t then
      tell t
        (Engine.Trace_event.Conn_close
           { conn = conn.Socket.conn_id; refunded_bytes = !refunded });
    schedule_to_client t conn t.latency (fun () -> conn.Socket.client.Socket.on_closed conn)
  end

let connect t ~src ?(src_port = 0) ~port ~handlers () =
  schedule t t.latency (fun () ->
      arrival t (P_syn { src; src_port; port; client = handlers; completes = true }))

let client_send t conn payload =
  schedule t (delivery_delay t payload) (fun () -> arrival t (P_data (conn, payload)))

let client_close t conn = schedule t t.latency (fun () -> arrival t (P_fin conn))

let inject_syn t ~src ~port =
  schedule t Simtime.span_zero (fun () ->
      arrival t (P_syn { src; src_port = 0; port; client = Socket.null_handlers; completes = false }))
