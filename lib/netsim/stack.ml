module Simtime = Engine.Simtime
module Sim = Engine.Sim
module Machine = Procsim.Machine
module Container = Rescont.Container
module Usage = Rescont.Usage
module Attrs = Rescont.Attrs

type mode = Softirq | Lrp | Rc

type costs = {
  irq_per_packet : Simtime.span;
  demux : Simtime.span;
  syn_process : Simtime.span;
  ack_process : Simtime.span;
  data_rx_process : Simtime.span;
  fin_process : Simtime.span;
  tx_per_packet : Simtime.span;
  conn_teardown : Simtime.span;
}

let default_costs =
  {
    irq_per_packet = Simtime.ns 2_500;
    demux = Simtime.ns 1_400;
    syn_process = Simtime.us 95;
    ack_process = Simtime.us 15;
    data_rx_process = Simtime.us 20;
    fin_process = Simtime.us 15;
    tx_per_packet = Simtime.us 25;
    conn_teardown = Simtime.us 30;
  }

type stats = {
  mutable syns_received : int;
  mutable syn_queue_drops : int;
  mutable accept_queue_drops : int;
  mutable rx_queue_drops : int;
  mutable packets_processed : int;
  mutable conns_established : int;
  mutable conns_closed : int;
  mutable refused : int;
}

type softirq_charge = Charge_current | Charge_system

(* A unit of (possibly deferred) protocol work is a pooled mutable record
   ({!Workpool.item}) rather than a fresh variant per packet: the listen
   socket for a SYN is resolved by the early demultiplexer at arrival
   time and stamped on the item. *)

type t = {
  machine : Machine.t;
  mode : mode;
  costs : costs;
  mtu : int;
  latency : Simtime.span;
  link_bytes_per_ns : float;
  queue_cap : int;
  syn_timeout : Simtime.span;
  softirq_charge : softirq_charge;
  owner : Container.t;
  mutable listen_sockets : Socket.listen list; (* reference demux walks this *)
  demux : Demux.t; (* port-indexed fast path, mirrors [listen_sockets] *)
  mutable on_event : unit -> unit;
  mutable on_readable : Socket.conn -> unit;
  mutable on_syn_drop : Socket.listen -> Ipaddr.t -> unit;
  pool : Workpool.t;
  queues : (int, Workpool.queue * Container.t) Hashtbl.t;
  served_stamp : (int, int) Hashtbl.t; (* container id -> last service tick *)
  mutable service_tick : int;
  mutable pending : int;
  mutable services : service list; (* specific first, catch-all last *)
  conns : Conn_table.t; (* every non-closed connection this stack created *)
  ncpus : int; (* Machine.cpus, cached: the RSS hash fans flows over these *)
  irq_cost : Simtime.span; (* irq_per_packet + demux, precomputed *)
  system_charge : [ `Container of Container.t | `Current_or_system ];
  softirq_charge_v : [ `Container of Container.t | `Current_or_system ];
  stats : stats;
}

(* One per-process network kernel thread (paper §5.1): it services the
   deferred-processing queues of the containers it covers, in container
   priority order, binding itself to each packet's container. *)
and service = {
  svc_name : string;
  svc_covers : Container.t -> bool;
  svc_wq : Machine.Waitq.t;
  svc_home : Container.t;
  svc_cpu : int; (* processor the kthread is pinned to; -1 = unpinned *)
  mutable svc_busy : bool;
  mutable svc_thread : Machine.thread option;
}

let machine t = t.machine
let mode t = t.mode
let stats t = t.stats
let costs t = t.costs
let latency t = t.latency
(* Listeners chain: several server applications may share one stack (e.g.
   virtual hosting), and each adds its own wakeup. *)
let add_on_event t f =
  let previous = t.on_event in
  t.on_event <-
    (fun () ->
      previous ();
      f ())

let set_on_event = add_on_event
let set_on_readable t f = t.on_readable <- f
let set_on_syn_drop t f = t.on_syn_drop <- f
let pending_work t = t.pending
let queue_table_size t = Hashtbl.length t.queues
let stamp_table_size t = Hashtbl.length t.served_stamp
let tracked_conns t = Conn_table.length t.conns
let pool_stats t = Workpool.stats t.pool

(* Wire time of a payload on the access link: propagation plus
   serialisation at the link rate (a 4 MB response takes ~1/3 s on the
   paper's 100 Mbps Fast Ethernet, however fast the CPU). *)
let delivery_delay t payload =
  let transfer_ns =
    int_of_float (Float.round (float_of_int payload.Payload.bytes /. t.link_bytes_per_ns))
  in
  Simtime.span_add t.latency (Simtime.span_of_ns transfer_ns)

(* Schedule a client-bound event no earlier than everything already sent
   on this connection: per-connection FIFO, like TCP. *)
let schedule_to_client t conn delay f =
  let current = Machine.now t.machine in
  let target = Simtime.max (Simtime.add current delay) conn.Socket.last_delivery in
  conn.Socket.last_delivery <- target;
  Sim.post_at (Machine.sim t.machine) target f
let listens t = t.listen_sockets
let now t = Machine.now t.machine

let tracing t = Engine.Tracelog.enabled (Machine.trace t.machine)
let tell t ev = Engine.Tracelog.event (Machine.trace t.machine) (now t) ev

let add_listen t l =
  t.listen_sockets <- l :: t.listen_sockets;
  Demux.add t.demux l

let remove_listen t l =
  t.listen_sockets <-
    List.filter (fun l' -> l'.Socket.listen_id <> l.Socket.listen_id) t.listen_sockets;
  Demux.remove t.demux l

(* Most-specific-filter demultiplex (paper §4.8), reference semantics: a
   single fold over every listen socket.  [compare_specificity] ranks the
   more specific filter first (negative result), and ties break to the
   earliest-bound socket (lowest listen id), so overlapping filters of
   equal specificity demultiplex identically whatever order the listens
   were added in.  The production path is {!Demux.lookup} over the
   port-indexed table; this fold is kept as the executable specification
   the QCheck equivalence property runs against. *)
let demux_reference t ~port ~src =
  List.fold_left
    (fun best l ->
      if l.Socket.port <> port || not (Filter.matches l.Socket.filter src) then best
      else
        match best with
        | None -> Some l
        | Some b ->
            let c = Filter.compare_specificity l.Socket.filter b.Socket.filter in
            if c < 0 || (c = 0 && l.Socket.listen_id < b.Socket.listen_id) then Some l
            else best)
    None t.listen_sockets

let demux_lookup t ~port ~src = Demux.lookup t.demux ~port ~src

let cost_of_work t (w : Workpool.item) =
  match w.kind with
  | Workpool.Syn -> t.costs.syn_process
  | Workpool.Ack -> t.costs.ack_process
  | Workpool.Data ->
      Simtime.span_scale
        (float_of_int (Payload.packet_count ~mtu:t.mtu w.payload))
        t.costs.data_rx_process
  | Workpool.Fin -> t.costs.fin_process

let container_of_work t (w : Workpool.item) =
  match t.mode with
  | Lrp | Softirq ->
      (* LRP charges the receiving process; connection-level containers are
         an RC-only concept. *)
      t.owner
  | Rc -> (
      match w.kind with
      | Workpool.Syn -> (
          match w.listen with
          | Some l -> (
              match l.Socket.listen_container with Some c -> c | None -> t.owner)
          | None -> t.owner)
      | Workpool.Ack | Workpool.Data | Workpool.Fin ->
          Socket.conn_container_or w.conn ~default:t.owner)

let is_idle_class container = Attrs.is_idle_class (Container.attrs container)

(* Flow identity hash: a cheap avalanche mix of (source address, source
   port).  The multiplies overflow into the sign bit for src_port >= 23,
   so the mask to non-negative must be the LAST step — the original code
   masked mid-pipeline, which kept [rss_steer]'s final [mod] in range only
   by accident and handed any other consumer (the balancer's consistent
   hashing, which reduces the hash mod a ring size) a possibly negative
   value.  Masking last makes the result non-negative by construction, for
   every consumer. *)
let flow_hash src src_port =
  let h = Ipaddr.hash src lxor ((src_port + 1) * 0x9E3779B1) in
  let h = h lxor (h lsr 16) in
  let h = h * 0x45D9F3B in
  let h = h lxor (h lsr 13) in
  h land max_int

(* RSS-style receive-side steering: hash the flow to a processor, so every
   packet of a connection takes its interrupt — and its charge — on the
   same CPU.  Always 0 on a uniprocessor. *)
let rss_steer t src src_port = if t.ncpus <= 1 then 0 else flow_hash src src_port mod t.ncpus

(* Where a unit of protocol work takes its interrupt: SYNs hash the flow,
   everything else follows the steering stamped on its connection. *)
let steer_of_work t (w : Workpool.item) =
  match w.kind with
  | Workpool.Syn -> rss_steer t w.src w.src_port
  | Workpool.Ack | Workpool.Data | Workpool.Fin -> w.conn.Socket.steer_cpu

(* The principal that owns a connection's buffered bytes.  Resolved once
   and stamped on the connection: charge and refund must hit the same
   container even if the connection is rebound in between
   ([Socket.bind_container] moves the stamped charge with the binding). *)
let rx_memory_container t conn =
  match conn.Socket.rx_mem_owner with
  | Some owner -> owner
  | None ->
      let owner =
        match t.mode with
        | Lrp | Softirq -> t.owner
        | Rc -> Socket.conn_container_or conn ~default:t.owner
      in
      conn.Socket.rx_mem_owner <- Some owner;
      owner

(* Memory-limit enforcement (the [memory_limit] attribute, §4.1): buffered
   socket memory held anywhere on the container's parent chain must stay
   under the tightest limit, or the incoming data is discarded — back-
   pressure by early drop, like the per-container packet queues. *)
let memory_limit_exceeded container ~extra =
  let rec check node =
    (match (Container.attrs node).Attrs.memory_limit with
    | Some limit -> Usage.memory_bytes (Container.subtree_usage node) + extra > limit
    | None -> false)
    || match Container.parent node with Some p -> check p | None -> false
  in
  check container

let schedule t delay f = Sim.post (Machine.sim t.machine) delay f

(* A connection leaves the registry the instant it closes, from whichever
   path closed it — that is what keeps {!Conn_table} scans (the memory
   conservation law, [reap]) proportional to live traffic with no pruning
   pass at all. *)
let mark_closed t conn =
  conn.Socket.state <- Socket.Closed;
  ignore (Conn_table.remove t.conns conn)

(* Lazily purge SYN-queue entries that completed, died, or timed out.  A
   timed-out half-open connection is a drop like any other: it counts
   against the listener and the stack, and fires the drop callback, so SYN
   flood damage is visible whether entries die by eviction or by timeout. *)
let purge_syn_queue t l =
  let rec purge () =
    match Queue.peek_opt l.Socket.syn_queue with
    | Some conn when conn.Socket.state <> Socket.Syn_rcvd ->
        ignore (Queue.pop l.Socket.syn_queue);
        purge ()
    | Some conn
      when Simtime.span_compare (Simtime.diff (now t) conn.Socket.syn_arrival) t.syn_timeout > 0
      ->
        ignore (Queue.pop l.Socket.syn_queue);
        mark_closed t conn;
        l.Socket.syn_drops <- l.Socket.syn_drops + 1;
        t.stats.syn_queue_drops <- t.stats.syn_queue_drops + 1;
        if tracing t then
          tell t
            (Engine.Trace_event.Syn_drop
               {
                 listen = l.Socket.listen_id;
                 src = Ipaddr.to_string conn.Socket.src;
                 reason = Engine.Trace_event.Timeout;
               });
        t.on_syn_drop l conn.Socket.src;
        purge ()
    | Some _ | None -> ()
  in
  purge ()

(* Evict the oldest half-open connection to make room (drop-oldest). *)
let evict_syn t l =
  let rec evict () =
    if Queue.length l.Socket.syn_queue >= l.Socket.syn_backlog then begin
      match Queue.take_opt l.Socket.syn_queue with
      | None -> ()
      | Some victim ->
          if victim.Socket.state = Socket.Syn_rcvd then begin
            mark_closed t victim;
            l.Socket.syn_drops <- l.Socket.syn_drops + 1;
            t.stats.syn_queue_drops <- t.stats.syn_queue_drops + 1;
            if tracing t then
              tell t
                (Engine.Trace_event.Syn_drop
                   {
                     listen = l.Socket.listen_id;
                     src = Ipaddr.to_string victim.Socket.src;
                     reason = Engine.Trace_event.Overflow;
                   });
            t.on_syn_drop l victim.Socket.src
          end;
          evict ()
    end
  in
  evict ()

let track_conn t conn = Conn_table.add t.conns conn

(* The registry holds exactly the non-closed connections, so a reap pass
   normally removes nothing — and, unlike the old [List.filter] rebuild,
   costs no allocation when it does not. *)
let reap t = Conn_table.reap_closed t.conns

let sum_conn_rx acc conn =
  Queue.fold (fun a p -> a + p.Payload.bytes) acc conn.Socket.rx_queue

(* Fast readout: the table's per-slot rx mirror summed in slot order.  The
   structural per-queue walk stays available so the conservation law can
   hold the mirror itself to account. *)
let buffered_rx_bytes t = Conn_table.rx_total t.conns
let buffered_rx_bytes_walk t = Conn_table.fold t.conns ~init:0 sum_conn_rx

(* Container teardown (§4.6): drop the per-container deferred-processing
   queue and service stamp, or both tables grow forever under per-connection
   container churn.  Work still queued for the dead principal is discarded
   like an early drop — no further CPU will be spent on it. *)
let forget_container t container =
  let cid = Container.id container in
  (match Hashtbl.find_opt t.queues cid with
  | Some (q, _) ->
      let dropped = Workpool.queue_length q in
      if dropped > 0 then begin
        t.pending <- t.pending - dropped;
        t.stats.rx_queue_drops <- t.stats.rx_queue_drops + dropped
      end;
      let rec drain () =
        match Workpool.pop q with
        | Some item ->
            Workpool.release t.pool item;
            drain ()
        | None -> ()
      in
      drain ();
      Hashtbl.remove t.queues cid
  | None -> ());
  Hashtbl.remove t.served_stamp cid

let charge_rx container packets bytes = Container.charge_rx container ~packets ~bytes

(* The protocol action itself; its CPU cost has already been consumed by
   the caller (softirq steal or network kernel thread).  Callers release
   the item back to the pool afterwards; closures scheduled from here
   capture extracted fields, never the pooled item itself. *)
let rec perform t (w : Workpool.item) =
  t.stats.packets_processed <- t.stats.packets_processed + 1;
  match w.kind with
  | Workpool.Syn -> (
      match w.listen with
      | None ->
          t.stats.refused <- t.stats.refused + 1;
          let client = w.client in
          schedule t t.latency (fun () -> client.Socket.on_refused ())
      | Some l ->
          if tracing t then
            tell t
              (Engine.Trace_event.Net_syn
                 { src = Ipaddr.to_string w.src; listen = l.Socket.listen_id });
          purge_syn_queue t l;
          evict_syn t l;
          let conn = Socket.make_conn ~src:w.src ~src_port:w.src_port ~client:w.client ~now:(now t) in
          conn.Socket.steer_cpu <- rss_steer t w.src w.src_port;
          track_conn t conn;
          conn.Socket.listen <- Some l;
          Queue.push conn l.Socket.syn_queue;
          charge_rx (container_of_work t w) 1 40;
          (* SYN|ACK goes out; a real client ACKs one round trip later. *)
          if w.completes then
            schedule t (Simtime.span_add t.latency t.latency) (fun () -> ack_arrival t conn))
  | Workpool.Ack ->
      let conn = w.conn in
      charge_rx (container_of_work t w) 1 40;
      if conn.Socket.state = Socket.Syn_rcvd then begin
        match conn.Socket.listen with
        | None -> mark_closed t conn
        | Some l ->
            if Queue.length l.Socket.accept_queue >= l.Socket.backlog then begin
              (* Dropped silently, as 1990s BSD-derived stacks did: the
                 client finds out via its retransmission timer. *)
              mark_closed t conn;
              l.Socket.accept_drops <- l.Socket.accept_drops + 1;
              t.stats.accept_queue_drops <- t.stats.accept_queue_drops + 1;
              if tracing t then
                tell t
                  (Engine.Trace_event.Accept_drop
                     { listen = l.Socket.listen_id; conn = conn.Socket.conn_id })
            end
            else begin
              conn.Socket.state <- Socket.Established;
              if tracing t then
                tell t
                  (Engine.Trace_event.Net_established
                     { conn = conn.Socket.conn_id; src = Ipaddr.to_string conn.Socket.src });
              Queue.push conn l.Socket.accept_queue;
              t.stats.conns_established <- t.stats.conns_established + 1;
              t.on_event ();
              schedule t t.latency (fun () ->
                  conn.Socket.client.Socket.on_established conn)
            end
      end
  | Workpool.Data ->
      let conn = w.conn and payload = w.payload in
      let container = container_of_work t w in
      charge_rx container (Payload.packet_count ~mtu:t.mtu payload) payload.Payload.bytes;
      if conn.Socket.state = Socket.Established then begin
        let owner = rx_memory_container t conn in
        if memory_limit_exceeded owner ~extra:payload.Payload.bytes then begin
          (* Buffer memory exhausted for this principal: drop the data;
             the client's retransmission machinery will retry. *)
          t.stats.rx_queue_drops <- t.stats.rx_queue_drops + 1;
          if tracing t then
            tell t
              (Engine.Trace_event.Rx_discard
                 {
                   cid = Container.id owner;
                   container = Container.name owner;
                   bytes = payload.Payload.bytes;
                 })
        end
        else begin
          (* Buffered data occupies socket-buffer memory until the
             application reads it (§4.4). *)
          Container.charge_memory owner payload.Payload.bytes;
          Queue.push payload conn.Socket.rx_queue;
          Conn_table.rx_add t.conns conn payload.Payload.bytes;
          t.on_event ();
          (* Edge-triggered readability: fire only on the empty->non-empty
             transition so scan-free servers can keep a duplicate-free
             ready list. *)
          if Queue.length conn.Socket.rx_queue = 1 then t.on_readable conn
        end
      end
  | Workpool.Fin -> (
      let conn = w.conn in
      charge_rx (container_of_work t w) 1 40;
      match conn.Socket.state with
      | Socket.Established ->
          conn.Socket.state <- Socket.Close_wait;
          t.on_event ();
          (* Peer close is a readability event too (EOF), so ready-list
             servers notice half-closed connections without scanning. *)
          if Queue.is_empty conn.Socket.rx_queue then t.on_readable conn
      | Socket.Syn_rcvd | Socket.Close_wait | Socket.Closed -> ())

(* Deferred-processing queues, one per container (RC) or one for the owner
   process (LRP). *)
and queue_for t container =
  let cid = Container.id container in
  match Hashtbl.find_opt t.queues cid with
  | Some (q, _) -> q
  | None ->
      let q = Workpool.queue_create t.pool in
      (* Only live containers get a tracked queue: a service thread that
         kept a reference across the teardown would otherwise resurrect the
         table entry with no hook left to prune it — a leak per churned
         container.  The untracked queue is a harmless sink. *)
      if not (Container.is_destroyed container) then begin
        Hashtbl.replace t.queues cid (q, container);
        Container.on_destroy container (fun c -> forget_container t c)
      end;
      q

and best_pending t ~covers ~allow_idle =
  (* Highest container priority wins; equal priorities are served
     least-recently-first so no container can starve its peers. *)
  let stamp c =
    match Hashtbl.find_opt t.served_stamp (Container.id c) with Some s -> s | None -> -1
  in
  Hashtbl.fold
    (fun _ (q, c) acc ->
      if Workpool.queue_is_empty q then acc
      else if not (covers c) then acc
      else if (not allow_idle) && is_idle_class c then acc
      else
        let prio = Attrs.effective_net_priority (Container.attrs c) in
        match acc with
        | Some (best, best_prio)
          when best_prio > prio || (best_prio = prio && stamp best <= stamp c) ->
            acc
        | Some _ | None -> Some (c, prio))
    t.queues None

(* The covering service pinned to [steer] when one exists, else the first
   covering service (the uniprocessor case, and explicitly-added virtual
   hosting services, which are unpinned). *)
and service_covering t container ~steer =
  let rec find best = function
    | [] -> best
    | svc :: rest ->
        if not (svc.svc_covers container) then find best rest
        else if svc.svc_cpu = steer then Some svc
        else find (match best with None -> Some svc | some -> some) rest
  in
  find None t.services

and service_has_work t svc =
  Hashtbl.fold
    (fun _ (q, c) acc -> acc || ((not (Workpool.queue_is_empty q)) && svc.svc_covers c))
    t.queues false

and pick_work t svc =
  (* Running tasks are dequeued from the policy while on a processor, so a
     positive count means someone other than this thread wants the CPU. *)
  let machine_otherwise_busy = Machine.runnable_tasks t.machine > 0 in
  let choice =
    match
      best_pending t ~covers:svc.svc_covers ~allow_idle:(not machine_otherwise_busy)
    with
    | Some (c, _) -> Some c
    | None -> None
  in
  match choice with
  | None -> None
  | Some container -> (
      let q = queue_for t container in
      match Workpool.pop q with
      | None -> None
      | Some work ->
          t.pending <- t.pending - 1;
          t.service_tick <- t.service_tick + 1;
          Hashtbl.replace t.served_stamp (Container.id container) t.service_tick;
          if tracing t then
            tell t
              (Engine.Trace_event.Net_dequeue
                 {
                   cid = Container.id container;
                   container = Container.name container;
                   depth = Workpool.queue_length q;
                 });
          Some (container, work))

and enqueue_work t (work : Workpool.item) =
  let container = container_of_work t work in
  if Container.is_destroyed container then begin
    (* The principal died between demux and enqueue: discard like any
       early drop — an untracked queue would strand the pending count. *)
    t.stats.rx_queue_drops <- t.stats.rx_queue_drops + 1;
    Workpool.release t.pool work
  end
  else
    let q = queue_for t container in
    if Workpool.queue_length q >= t.queue_cap then begin
      (* Early discard at interrupt level: the whole point of LRP/RC under
         overload — no further CPU is spent on this packet. *)
      if tracing t then
        tell t
          (Engine.Trace_event.Early_discard
             {
               cid = Container.id container;
               container = Container.name container;
               depth = Workpool.queue_length q;
             });
      t.stats.rx_queue_drops <- t.stats.rx_queue_drops + 1;
      Workpool.release t.pool work
    end
    else begin
      Workpool.push q work;
      t.pending <- t.pending + 1;
      if tracing t then
        tell t
          (Engine.Trace_event.Net_enqueue
             {
               cid = Container.id container;
               container = Container.name container;
               depth = Workpool.queue_length q;
             });
      (* Make the covering network kernel thread runnable at the priority of
         its best pending container (paper §4.7) — preferring the kthread
         pinned to the processor this work was steered to. *)
      match service_covering t container ~steer:(steer_of_work t work) with
      | Some svc ->
          if not svc.svc_busy then begin
            (match (svc.svc_thread, best_pending t ~covers:svc.svc_covers ~allow_idle:true) with
            | Some kthread, Some (best, _) when t.mode = Rc ->
                Machine.rebind t.machine kthread best
            | (Some _ | None), (Some _ | None) -> ());
            Machine.Waitq.signal svc.svc_wq
          end
      | None -> ()
    end

(* Interrupt-level arrival of an already-built work item: charge the IRQ +
   demux cost and either process immediately (softirq) or enqueue. *)
and dispatch t (work : Workpool.item) =
  let cpu = steer_of_work t work in
  match t.mode with
  | Softirq ->
      (* Interrupt + softirq protocol processing, immediately, above all
         threads — on the processor the flow is steered to.  Charged per
         §3.2 either to the unlucky principal running at the time, or
         (default, matching Digital UNIX's behaviour as measured in
         Fig. 13) to no process at all. *)
      Machine.steal_time ~cpu t.machine
        ~cost:(Simtime.span_add t.irq_cost (cost_of_work t work))
        ~charge:t.softirq_charge_v;
      perform t work;
      Workpool.release t.pool work
  | Lrp | Rc ->
      Machine.steal_time ~cpu t.machine ~cost:t.irq_cost ~charge:t.system_charge;
      enqueue_work t work

and ack_arrival t conn =
  let work = Workpool.acquire t.pool in
  work.kind <- Workpool.Ack;
  work.conn <- conn;
  dispatch t work

let syn_arrival t ~src ~src_port ~port ~client ~completes =
  t.stats.syns_received <- t.stats.syns_received + 1;
  let work = Workpool.acquire t.pool in
  work.Workpool.kind <- Workpool.Syn;
  work.Workpool.src <- src;
  work.Workpool.src_port <- src_port;
  work.Workpool.listen <- Demux.lookup t.demux ~port ~src;
  work.Workpool.client <- client;
  work.Workpool.completes <- completes;
  dispatch t work

let data_arrival t conn payload =
  let work = Workpool.acquire t.pool in
  work.Workpool.kind <- Workpool.Data;
  work.Workpool.conn <- conn;
  work.Workpool.payload <- payload;
  dispatch t work

let fin_arrival t conn =
  let work = Workpool.acquire t.pool in
  work.Workpool.kind <- Workpool.Fin;
  work.Workpool.conn <- conn;
  dispatch t work

let kthread_body t svc () =
  let self = Machine.self () in
  (* Once bound to a container, drain its whole queue before moving on:
     hopping containers costs a scheduling turn per packet, and queues are
     bounded so no peer waits more than [queue_cap] packets.  Idle-class
     queues are drained one packet at a time so regular work can reclaim
     the thread between packets. *)
  let rec drain container =
    if not (is_idle_class container && Machine.runnable_tasks t.machine > 0) then begin
      match Workpool.pop (queue_for t container) with
      | None -> ()
      | Some work ->
          t.pending <- t.pending - 1;
          t.service_tick <- t.service_tick + 1;
          Hashtbl.replace t.served_stamp (Container.id container) t.service_tick;
          if tracing t then
            tell t
              (Engine.Trace_event.Net_dequeue
                 {
                   cid = Container.id container;
                   container = Container.name container;
                   depth = Workpool.queue_length (queue_for t container);
                 });
          Machine.cpu ~kernel:true (cost_of_work t work);
          perform t work;
          Workpool.release t.pool work;
          if not (is_idle_class container) then drain container
    end
  in
  let rec loop () =
    match pick_work t svc with
    | Some (container, work) ->
        svc.svc_busy <- true;
        if t.mode = Rc then Machine.rebind t.machine self container
        else Machine.rebind t.machine self svc.svc_home;
        Machine.cpu ~kernel:true (cost_of_work t work);
        perform t work;
        Workpool.release t.pool work;
        drain container;
        svc.svc_busy <- false;
        loop ()
    | None ->
        svc.svc_busy <- false;
        Machine.Waitq.wait svc.svc_wq;
        loop ()
  in
  loop ()

let spawn_service ?cpu t ~name ~home ~covers =
  match t.mode with
  | Softirq -> None
  | Lrp | Rc ->
      let svc =
        {
          svc_name = name;
          svc_covers = covers;
          svc_wq = Machine.Waitq.create ~name t.machine;
          svc_home = home;
          svc_cpu = (match cpu with Some c -> c | None -> -1);
          svc_busy = false;
          svc_thread = None;
        }
      in
      let thread =
        Machine.spawn t.machine ~kernel:true ?cpu ~name ~container:home (kthread_body t svc)
      in
      svc.svc_thread <- Some thread;
      Some svc

let add_service ?cpu t ~name ~home ~covers =
  match spawn_service ?cpu t ~name ~home ~covers with
  | Some svc -> t.services <- svc :: t.services
  | None -> ()

let create ?(mtu = 1460) ?(latency = Simtime.us 150) ?(costs = default_costs)
    ?(link_mbps = 100.) ?(queue_cap = 64) ?(syn_timeout = Simtime.sec 75)
    ?(softirq_charge = Charge_system) ~machine ~mode ~owner () =
  if link_mbps <= 0. then invalid_arg "Stack.create: link rate must be positive";
  let system = Machine.system_container machine in
  let t =
    {
      machine;
      mode;
      costs;
      mtu;
      latency;
      link_bytes_per_ns = link_mbps *. 1e6 /. 8. /. 1e9;
      queue_cap;
      syn_timeout;
      softirq_charge;
      owner;
      listen_sockets = [];
      demux = Demux.create ();
      on_event = (fun () -> ());
      on_readable = (fun _ -> ());
      on_syn_drop = (fun _ _ -> ());
      pool = Workpool.create ();
      queues = Hashtbl.create 64;
      served_stamp = Hashtbl.create 64;
      service_tick = 0;
      pending = 0;
      services = [];
      conns = Conn_table.create ();
      ncpus = Machine.cpus machine;
      irq_cost = Simtime.span_add costs.irq_per_packet costs.demux;
      system_charge = `Container system;
      softirq_charge_v =
        (match softirq_charge with
        | Charge_current -> `Current_or_system
        | Charge_system -> `Container system);
      stats =
        {
          syns_received = 0;
          syn_queue_drops = 0;
          accept_queue_drops = 0;
          rx_queue_drops = 0;
          packets_processed = 0;
          conns_established = 0;
          conns_closed = 0;
          refused = 0;
        };
    }
  in
  (* Expose the stack's counters as pull gauges over the live stats record:
     exported values agree with the in-process view by construction. *)
  let registry = Machine.metrics machine in
  let s = t.stats in
  let expose name read = Engine.Metrics.gauge registry name (fun () -> float_of_int (read ())) in
  expose "net.syns_received" (fun () -> s.syns_received);
  expose "net.syn_queue_drops" (fun () -> s.syn_queue_drops);
  expose "net.accept_queue_drops" (fun () -> s.accept_queue_drops);
  expose "net.rx_queue_drops" (fun () -> s.rx_queue_drops);
  expose "net.packets_processed" (fun () -> s.packets_processed);
  expose "net.conns_established" (fun () -> s.conns_established);
  expose "net.conns_closed" (fun () -> s.conns_closed);
  expose "net.refused" (fun () -> s.refused);
  expose "net.pending_work" (fun () -> t.pending);
  (* Conservation laws over the stack's queues and socket-buffer memory.
     The memory law assumes one stack per machine — true of every rig here
     (Net attaches each stack to its own machine) — so it is registered
     once per registry. *)
  let module I = Engine.Invariant in
  let inv = Machine.invariants machine in
  if not (List.mem "net.pending-consistency" (I.names inv)) then begin
    I.register inv ~law:"net.pending-consistency" (fun () ->
        let queued =
          Hashtbl.fold (fun _ (q, _) acc -> acc + Workpool.queue_length q) t.queues 0
        in
        I.equal_int ~what:"queued deferred packets vs stack pending counter" queued t.pending);
    I.register inv ~law:"net.queue-bounds" (fun () ->
        let rec scan = function
          | [] -> Ok ()
          | l :: rest -> (
              let what kind =
                Printf.sprintf "listen #%d %s queue" l.Socket.listen_id kind
              in
              match
                I.leq_int ~what:(what "syn") (Queue.length l.Socket.syn_queue)
                  l.Socket.syn_backlog
              with
              | Error _ as e -> e
              | Ok () -> (
                  match
                    I.leq_int ~what:(what "accept")
                      (Queue.length l.Socket.accept_queue)
                      l.Socket.backlog
                  with
                  | Error _ as e -> e
                  | Ok () -> scan rest))
        in
        scan t.listen_sockets);
    I.register inv ~law:"net.memory-conservation" (fun () ->
        (* Two checks in one law: the slot-order rx mirror must agree with
           a structural walk of the rx queues (the mirror is redundant
           state and may not drift), and that total must equal the memory
           charged into the root's subtree. *)
        match
          I.equal_int ~what:"rx mirror vs structural rx-queue walk" (buffered_rx_bytes t)
            (buffered_rx_bytes_walk t)
        with
        | Error _ as e -> e
        | Ok () ->
            I.equal_int ~what:"buffered rx bytes vs root-subtree memory_bytes"
              (buffered_rx_bytes t)
              (Rescont.Usage.memory_bytes
                 (Container.subtree_usage (Machine.root machine))));
    (* Pooled work items can never leak or double-free silently: every item
       is on the free list, held by a service thread, or queued for one —
       and each per-container queue's linked length matches its counter. *)
    I.register inv ~law:"net.pool-consistency" (fun () ->
        let allocated, free, in_service, queued = Workpool.stats t.pool in
        match
          I.equal_int ~what:"pooled work items: free + in-service + queued vs allocated"
            (free + in_service + queued) allocated
        with
        | Error _ as e -> e
        | Ok () ->
            let structural =
              Hashtbl.fold (fun _ (q, _) acc -> acc + Workpool.queue_length q) t.queues 0
            in
            (match
               I.equal_int ~what:"pool queued counter vs per-container queue lengths"
                 queued structural
             with
            | Error _ as e -> e
            | Ok () ->
                if Hashtbl.fold (fun _ (q, _) acc -> acc && Workpool.queue_validate q) t.queues true
                then Ok ()
                else Error "a per-container work queue fails structural validation"))
  end;
  (match mode with
  | Softirq -> ()
  | Lrp | Rc ->
      (* One network kernel thread per processor on an SMP machine, each
         pinned to its CPU so steered flows are protocol-processed where
         their interrupts land; the classic single netisr on a
         uniprocessor. *)
      if t.ncpus = 1 then add_service t ~name:"netisr" ~home:owner ~covers:(fun _ -> true)
      else
        for i = t.ncpus - 1 downto 0 do
          add_service ~cpu:i t
            ~name:(Printf.sprintf "netisr%d" i)
            ~home:owner
            ~covers:(fun _ -> true)
        done;
      (* Idle-class protocol processing runs only when the CPU would
         otherwise idle (paper §4.8). *)
      Machine.set_on_idle machine (fun () ->
          List.iter
            (fun svc ->
              if (not svc.svc_busy) && service_has_work t svc then
                Machine.Waitq.signal svc.svc_wq)
            t.services));
  t

let accept t l =
  let rec pop () =
    match Queue.take_opt l.Socket.accept_queue with
    | None -> None
    | Some conn ->
        if conn.Socket.state = Socket.Closed then pop () else Some conn
  in
  ignore t;
  pop ()

let recv t conn =
  match Queue.take_opt conn.Socket.rx_queue with
  | None -> None
  | Some payload ->
      Container.charge_memory (rx_memory_container t conn) (-payload.Payload.bytes);
      Conn_table.rx_add t.conns conn (-payload.Payload.bytes);
      Some payload

let send t conn payload =
  let packets = Payload.packet_count ~mtu:t.mtu payload in
  Machine.cpu ~kernel:true (Simtime.span_scale (float_of_int packets) t.costs.tx_per_packet);
  (match conn.Socket.container with
  | Some c -> Container.charge_tx c ~packets ~bytes:payload.Payload.bytes
  | None -> Container.charge_tx t.owner ~packets ~bytes:payload.Payload.bytes);
  if conn.Socket.state = Socket.Established || conn.Socket.state = Socket.Close_wait then
    schedule_to_client t conn (delivery_delay t payload) (fun () ->
        conn.Socket.client.Socket.on_response conn payload)

let close t conn =
  if conn.Socket.state <> Socket.Closed then begin
    Machine.cpu ~kernel:true
      (Simtime.span_add t.costs.fin_process t.costs.conn_teardown);
    mark_closed t conn;
    (* Unread buffered data still occupies socket-buffer memory charged to
       the owning container; tearing the connection down frees the buffers,
       so the charge must be credited back or the principal leaks memory
       accounting with every abandoned connection. *)
    let refunded = ref 0 in
    Queue.iter (fun p -> refunded := !refunded + p.Payload.bytes) conn.Socket.rx_queue;
    Queue.clear conn.Socket.rx_queue;
    if !refunded > 0 then Container.charge_memory (rx_memory_container t conn) (- !refunded);
    t.stats.conns_closed <- t.stats.conns_closed + 1;
    if tracing t then
      tell t
        (Engine.Trace_event.Conn_close
           { conn = conn.Socket.conn_id; refunded_bytes = !refunded });
    schedule_to_client t conn t.latency (fun () -> conn.Socket.client.Socket.on_closed conn)
  end

let connect t ~src ?(src_port = 0) ~port ~handlers () =
  schedule t t.latency (fun () ->
      syn_arrival t ~src ~src_port ~port ~client:handlers ~completes:true)

(* External arrival injection: the SYN hits the NIC at the instant of the
   call, with no scheduled closure per arrival.  Open-loop arrival
   processes (the cluster balancer) model their own wire delay and fire
   from inside a sim event, so the per-connection [connect] closure and
   its fixed client-side latency would be pure overhead at 10^5-10^6
   arrivals. *)
let inject_connect t ~src ~src_port ~port ~handlers =
  syn_arrival t ~src ~src_port ~port ~client:handlers ~completes:true

(* Deferred variant for cross-shard dispatch: the balancer runs in another
   shard's event core and hands the arrival over at a window barrier, so
   the SYN must hit this NIC at a future instant of this machine's sim
   rather than "now".  One fire-and-forget event per arrival. *)
let inject_connect_at t ~at ~src ~src_port ~port ~handlers =
  Sim.post_at (Machine.sim t.machine) at (fun () ->
      syn_arrival t ~src ~src_port ~port ~client:handlers ~completes:true)

(* The SYN segment as charged by the receive path (charge_rx 1 40): what a
   connection attempt costs on the wire, and therefore the term the
   cluster's dispatch lookahead is derived from. *)
let syn_wire_bytes = 40

let syn_delivery_delay t = delivery_delay t (Payload.make ~bytes:syn_wire_bytes Simtime.zero)

let client_send t conn payload =
  schedule t (delivery_delay t payload) (fun () -> data_arrival t conn payload)

let client_close t conn = schedule t t.latency (fun () -> fin_arrival t conn)

let inject_syn t ~src ~port =
  schedule t Simtime.span_zero (fun () ->
      syn_arrival t ~src ~src_port:0 ~port ~client:Socket.null_handlers ~completes:false)
