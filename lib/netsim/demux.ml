(* Port-indexed early demultiplexer (paper §4.8).

   The reference semantics — [Stack.demux_reference], a fold over every
   listen socket — picks, among the sockets whose port matches and whose
   filter matches the source, the most specific filter, breaking ties
   toward the lowest listen id (earliest bound).  That fold is O(all
   listens) per SYN.

   Here each port owns an array of its listen sockets pre-sorted by
   exactly that key: decreasing specificity, then increasing listen id.
   Lookup walks the port's array and returns the {e first} filter match,
   which is the fold's minimum by construction (the order is total:
   listen ids are unique).  The bucket is rebuilt incrementally — only on
   listen/unlisten, and only for the affected port — so the per-SYN path
   does no sorting and no allocation beyond the [Some] result. *)

type t = { buckets : (int, Socket.listen array) Hashtbl.t }

let create () = { buckets = Hashtbl.create 16 }

(* The demux priority order: most specific first, ties to the earliest
   bound socket, matching the reference fold's choice exactly. *)
let order a b =
  let c = Filter.compare_specificity a.Socket.filter b.Socket.filter in
  if c <> 0 then c else compare a.Socket.listen_id b.Socket.listen_id

let add t l =
  let port = l.Socket.port in
  let bucket =
    match Hashtbl.find_opt t.buckets port with
    | Some existing -> Array.append existing [| l |]
    | None -> [| l |]
  in
  Array.sort order bucket;
  Hashtbl.replace t.buckets port bucket

let remove t l =
  let port = l.Socket.port in
  match Hashtbl.find_opt t.buckets port with
  | None -> ()
  | Some existing ->
      let bucket =
        Array.of_list
          (List.filter
             (fun l' -> l'.Socket.listen_id <> l.Socket.listen_id)
             (Array.to_list existing))
      in
      if Array.length bucket = 0 then Hashtbl.remove t.buckets port
      else Hashtbl.replace t.buckets port bucket

let lookup t ~port ~src =
  match Hashtbl.find t.buckets port with
  | exception Not_found -> None
  | bucket ->
      let n = Array.length bucket in
      let rec scan i =
        if i >= n then None
        else
          let l = bucket.(i) in
          if Filter.matches l.Socket.filter src then Some l else scan (i + 1)
      in
      scan 0

let ports t = Hashtbl.length t.buckets
