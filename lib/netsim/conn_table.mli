(** Slot-indexed registry of the connections a {!Stack} has created.

    Replaces the [Socket.conn list] + amortised [List.filter] prune: each
    tracked connection is stamped with its slot index ([Socket.track_slot]),
    so add, remove, and membership are O(1) and allocation-free once the
    backing arrays have grown to the peak population.  The stack removes a
    connection the moment it transitions to [Closed], so the table holds
    exactly the non-closed connections — which is what makes reap-style
    sweeps ({!reap_closed}) no-ops rather than whole-list rebuilds.

    The list representation survives as the QCheck executable reference
    (test_netsim's conn-table equivalence property). *)

type t

val create : ?capacity:int -> unit -> t
(** Initial capacity defaults to 64 slots; the table doubles as needed. *)

val length : t -> int
(** Number of tracked connections. *)

val add : t -> Socket.conn -> unit
(** Track a connection, stamping [track_slot].
    @raise Invalid_argument if it is already tracked (by any table). *)

val remove : t -> Socket.conn -> bool
(** Untrack in O(1) via the stamped slot; [false] if it was not tracked
    here. *)

val mem : t -> Socket.conn -> bool

val iter : t -> (Socket.conn -> unit) -> unit
(** Visit every tracked connection (slot order, not insertion order). *)

val fold : t -> init:'a -> ('a -> Socket.conn -> 'a) -> 'a

val reap_closed : t -> int
(** Remove every tracked connection in state [Closed], returning how many
    were removed.  With the stack untracking on close this is normally a
    scan that removes nothing and allocates nothing. *)
