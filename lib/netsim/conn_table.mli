(** Struct-of-arrays registry of the connections a {!Stack} has created.

    Per-slot state lives in parallel field arrays — the connection, a
    wrapping generation stamp, and a mirror of the connection's
    buffered rx bytes — so table-wide scans (the memory-conservation law,
    reap sweeps, slot-order batch processing) walk flat arrays instead of
    chasing one boxed record per connection.  Each tracked connection is
    stamped with its slot index ([Socket.track_slot]), so add, remove, and
    membership are O(1) and allocation-free once the backing arrays have
    grown to the peak population.  The stack removes a connection the
    moment it transitions to [Closed], so the table holds exactly the
    non-closed connections.

    The list representation survives as the QCheck executable reference
    (test_pooling's conn-table equivalence property). *)

type t

val create : ?capacity:int -> unit -> t
(** Initial capacity defaults to 64 slots; the table doubles as needed. *)

val length : t -> int
(** Number of tracked connections. *)

val add : t -> Socket.conn -> unit
(** Track a connection, stamping [track_slot]; its rx mirror starts at 0.
    @raise Invalid_argument if it is already tracked (by any table). *)

val remove : t -> Socket.conn -> bool
(** Untrack in O(1) via the stamped slot; [false] if it was not tracked
    here.  Bumps the slot's generation, so outstanding {!handle}s for the
    departed occupant go stale. *)

val mem : t -> Socket.conn -> bool

(** {1 Generation-stamped handles}

    A handle packs (slot, generation at issue) into one immediate int:
    storable in flat int arrays and across events without pinning the
    connection.  {!find} rejects a handle once its slot has been vacated —
    the slot's next occupant carries a new generation.  Generations are
    {!generation_bits} (28) bits wide, so aliasing a handle needs 2^28
    reuses of one slot — unreachable even for cluster runs that churn 10^6
    connections.  (The original 16-bit stamp wrapped at 65536 reuses of a
    hot slot, which cluster-scale churn can reach; the staleness
    regression test pins the widened bound.) *)

type handle = int

val null_handle : handle
(** Never resolves. *)

val handle : t -> Socket.conn -> handle
(** The current handle for a tracked connection; {!null_handle} if it is
    not tracked here. *)

val find : t -> handle -> Socket.conn option
(** Resolve a handle: [None] if the slot was vacated (stale generation) or
    the handle is out of range. *)

(** {1 Buffered-rx mirror}

    The stack maintains, per slot, the byte count buffered in the
    occupant's rx queue (updated at data-push, recv and close).  The
    table-wide sum is then one flat array walk — the fast side of the
    memory-conservation law — while the structural per-queue walk remains
    available to validate the mirror itself. *)

val rx_add : t -> Socket.conn -> int -> unit
(** Adjust the tracked connection's mirrored rx byte count; no-op if the
    connection is not tracked here (a vacated slot's mirror is already
    zeroed). *)

val rx_of : t -> Socket.conn -> int
(** The mirrored count for a tracked connection (0 if untracked). *)

val rx_total : t -> int
(** Sum of the mirror over all slots, in slot order. *)

val iter : t -> (Socket.conn -> unit) -> unit
(** Visit every tracked connection (slot order, not insertion order). *)

val fold : t -> init:'a -> ('a -> Socket.conn -> 'a) -> 'a

val reap_closed : t -> int
(** Remove every tracked connection in state [Closed], returning how many
    were removed.  With the stack untracking on close this is normally a
    scan that removes nothing and allocates nothing. *)

val generation_bits : int
(** Width of the per-slot generation stamp: a handle can alias again only
    after [2^generation_bits] reuses of its slot. *)
