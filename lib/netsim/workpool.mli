(** Free-list pool of deferred-protocol-work items and the intrusive
    per-container queues they wait on.

    One mutable record per in-flight packet, reused across packets, with
    an explicit lifecycle (free → in service → queued → in service →
    free) checked on every transition: double release and release-while-
    queued raise.  The counters back the [net.pool-consistency] invariant
    law (free + in-service + queued = allocated), armed in the fuzzer.

    The pre-pool representation — fresh [W_syn]/[W_data] variants in a
    [Queue.t] — survives as the QCheck lockstep reference
    (test_netsim). *)

type kind = Syn | Ack | Data | Fin

type item = {
  mutable kind : kind;
  mutable src : Ipaddr.t;
  mutable src_port : int;
  mutable listen : Socket.listen option;
  mutable client : Socket.client_handlers;
  mutable completes : bool;
  mutable conn : Socket.conn;
  mutable payload : Payload.t;
  mutable lifecycle : int;
  mutable next : item;
}
(** Fields are meaningful per {!kind}: [Syn] uses [src]/[src_port]/
    [listen]/[client]/[completes]; [Ack]/[Fin] use [conn]; [Data] uses
    [conn] and [payload].  Unused reference fields hold pool-owned
    dummies.  [lifecycle] and [next] are pool-private. *)

type t
type queue

val create : unit -> t

val acquire : t -> item
(** An item in the in-service state, fields reset to dummies; reuses the
    free list, growing the pool only at a new in-flight peak. *)

val release : t -> item -> unit
(** Return an in-service item to the free list, clearing its reference
    fields.  @raise Invalid_argument on double free or if still queued. *)

val stats : t -> int * int * int * int
(** [(allocated, free, in_service, queued)]; the pool-consistency law is
    [free + in_service + queued = allocated]. *)

val queue_create : t -> queue
val queue_length : queue -> int
val queue_is_empty : queue -> bool

val push : queue -> item -> unit
(** Append an in-service item (FIFO).  @raise Invalid_argument if the
    item is not in service. *)

val pop : queue -> item option
(** Dequeue the head back into the in-service state. *)

val queue_iter : queue -> (item -> unit) -> unit

val queue_validate : queue -> bool
(** Structural audit: linked length matches the counter and every linked
    item is in the queued state. *)
