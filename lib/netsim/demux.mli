(** Port-indexed early-demultiplex table (paper §4.8).

    Maps an incoming SYN's destination port to its listen sockets,
    pre-sorted by (decreasing filter specificity, increasing listen id) so
    a lookup is a first-match scan of one port's bucket instead of a fold
    over every listen socket on the stack.  Agrees with the reference fold
    [Stack.demux_reference] on every (port, source) — a QCheck-tested
    equivalence, including equal-specificity ties and overlapping
    prefixes. *)

type t

val create : unit -> t

val add : t -> Socket.listen -> unit
(** Insert into the socket's port bucket, re-sorting just that bucket. *)

val remove : t -> Socket.listen -> unit
(** Remove by listen id from its port bucket. *)

val lookup : t -> port:int -> src:Ipaddr.t -> Socket.listen option
(** The most specific matching listen socket, ties to the earliest
    bound. *)

val ports : t -> int
(** Number of ports with at least one listen socket. *)
