(** IPv4 addresses and CIDR prefix arithmetic (RFC 1518, paper §4.8). *)

type t
(** An IPv4 address. *)

val v : int -> int -> int -> int -> t
(** [v 10 0 0 1] is 10.0.0.1.  @raise Invalid_argument on octets outside
    [0, 255]. *)

val of_string : string -> t
(** Parse dotted-quad notation.  @raise Invalid_argument on syntax
    errors. *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** The address as a non-negative integer — stable across runs, used as
    RSS-style flow-hash input. *)

val in_prefix : t -> template:t -> bits:int -> bool
(** [in_prefix addr ~template ~bits] is [true] when the top [bits] bits of
    [addr] equal those of [template].  [bits] = 0 matches everything;
    [bits] = 32 requires equality.  @raise Invalid_argument if [bits] is
    outside [0, 32]. *)

val offset : t -> int -> t
(** [offset base n] is the address [n] above [base] (wrapping within
    32 bits); handy for generating client populations. *)

val pp : Format.formatter -> t -> unit
