(** Server-side socket objects: listening sockets and connections.

    These are kernel data structures; the driving logic (handshakes, queue
    disciplines, processing modes) lives in {!Stack}.  Records are exposed
    because {!Stack} and the tests manipulate them directly, as kernel code
    would. *)

type conn_state = Syn_rcvd | Established | Close_wait | Closed

type conn = {
  conn_id : int;
  src : Ipaddr.t;
  src_port : int;
  mutable state : conn_state;
  mutable container : Rescont.Container.t option;
      (** The resource container this connection's kernel processing is
          charged to (socket→container binding, §4.6). *)
  mutable rx_mem_owner : Rescont.Container.t option;
      (** The container currently holding the charge for this connection's
          buffered receive bytes.  {!Stack} stamps it at the first charge;
          {!bind_container} moves the outstanding charge when the binding
          changes, so refunds always credit whoever was debited. *)
  rx_queue : Payload.t Queue.t;  (** Messages received, awaiting the application. *)
  mutable listen : listen option;  (** Back-pointer while not yet accepted. *)
  client : client_handlers;
  mutable syn_arrival : Engine.Simtime.t;
  mutable last_delivery : Engine.Simtime.t;
      (** Client-bound events are FIFO per connection: nothing may overtake
          earlier data on the wire ({!Stack} maintains this). *)
  mutable track_slot : int;
      (** Slot index in the owning stack's {!Conn_table}, stamped by the
          table itself; -1 when untracked.  Kernel-private plumbing that
          makes untracking on close O(1). *)
  mutable steer_cpu : int;
      (** Processor this flow's interrupt work is steered to, stamped by
          {!Stack} from its RSS hash when the connection is created; 0 on
          a uniprocessor.  Kernel-private. *)
}

and listen = {
  listen_id : int;
  port : int;
  filter : Filter.t;
  mutable listen_container : Rescont.Container.t option;
  accept_queue : conn Queue.t;
  backlog : int;
  syn_queue : conn Queue.t;
  syn_backlog : int;
  mutable syn_drops : int;
      (** SYNs dropped on queue overflow (the modified kernel notifies the
          application of these, §5.7). *)
  mutable accept_drops : int;
}

and client_handlers = {
  on_established : conn -> unit;
  on_refused : unit -> unit;
  on_response : conn -> Payload.t -> unit;
  on_closed : conn -> unit;
}
(** Callbacks into the (abstract, infinitely fast) client machine; invoked
    after simulated network latency. *)

val null_handlers : client_handlers
(** Handlers that ignore every event — what a spoofed-source SYN-flood
    packet amounts to. *)

val make_listen :
  ?filter:Filter.t ->
  ?backlog:int ->
  ?syn_backlog:int ->
  ?container:Rescont.Container.t ->
  port:int ->
  unit ->
  listen
(** Defaults: {!Filter.any}, backlog 128, SYN backlog 1024, no container. *)

val make_conn :
  src:Ipaddr.t -> src_port:int -> client:client_handlers -> now:Engine.Simtime.t -> conn

val conn_container_or : conn -> default:Rescont.Container.t -> Rescont.Container.t
(** The container charged for this connection: its own binding, else its
    listening socket's, else [default]. *)

val bind_container : conn -> Rescont.Container.t -> unit
(** Bind the connection to a container ("binding a socket to a container",
    §4.6), adjusting kernel-object counts on both sides. *)

val readable : conn -> bool
(** The application has something to pick up: pending messages, or a
    close-notification to consume. *)

val accept_ready : listen -> bool
