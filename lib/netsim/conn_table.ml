(* Struct-of-arrays connection registry.  The previous representation kept
   one [Socket.conn array] of boxed records; here the per-slot state is
   split into parallel field arrays — the connection pointer, a wrapping
   generation stamp, and a buffered-rx-bytes mirror — so the
   table-wide scans the stack runs (the memory-conservation law, reaps,
   slot-order batch processing) walk flat int arrays instead of chasing a
   record per connection.

   Slots are reused through a free list; the generation stamp is bumped on
   every vacate, and a {!handle} packs (slot, stamp-at-issue) into one int
   so a held handle from before the slot turned over is rejected by
   {!find} instead of resolving to the slot's new occupant.  The stamp is
   28 bits wide: aliasing needs 2^28 (~2.7*10^8) reuses of a single slot,
   unreachable even for cluster runs churning 10^6 connections.  (The
   original 16-bit stamp wrapped at 65536 reuses — reachable churn for one
   hot slot at cluster scale, caught by the staleness regression test.)
   The slot index gets the remaining bits: 2^34 slots on 64-bit, far above
   any real population. *)

type handle = int (* (slot lsl 28) lor stamp *)

let stamp_bits = 28
let stamp_mask = (1 lsl stamp_bits) - 1
let null_handle = -1
let handle_slot h = h lsr stamp_bits
let handle_stamp h = h land stamp_mask

type t = {
  mutable conns : Socket.conn array; (* [dummy] marks a vacant slot *)
  mutable stamps : int array; (* generation stamp, bumped when a slot vacates *)
  mutable rx_bytes : int array; (* buffered rx bytes of the slot's occupant *)
  dummy : Socket.conn;
  mutable free : int array; (* stack of vacant slot indexes *)
  mutable free_top : int;
  mutable live : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  (* The dummy connection is never exposed; it only keeps vacant slots
     from pinning real payloads. *)
  let dummy =
    Socket.make_conn ~src:(Ipaddr.v 0 0 0 0) ~src_port:0 ~client:Socket.null_handlers
      ~now:Engine.Simtime.zero
  in
  {
    conns = Array.make capacity dummy;
    stamps = Array.make capacity 0;
    rx_bytes = Array.make capacity 0;
    dummy;
    free = Array.init capacity (fun i -> capacity - 1 - i);
    free_top = capacity;
    live = 0;
  }

let length t = t.live

let grow t =
  let n = Array.length t.conns in
  let conns = Array.make (2 * n) t.dummy in
  Array.blit t.conns 0 conns 0 n;
  t.conns <- conns;
  let stamps = Array.make (2 * n) 0 in
  Array.blit t.stamps 0 stamps 0 n;
  t.stamps <- stamps;
  let rx = Array.make (2 * n) 0 in
  Array.blit t.rx_bytes 0 rx 0 n;
  t.rx_bytes <- rx;
  let free = Array.make (2 * n) 0 in
  Array.blit t.free 0 free 0 t.free_top;
  for i = 0 to n - 1 do
    free.(t.free_top + i) <- (2 * n) - 1 - i
  done;
  t.free <- free;
  t.free_top <- t.free_top + n

let add t conn =
  if conn.Socket.track_slot >= 0 then invalid_arg "Conn_table.add: connection already tracked";
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = t.free.(t.free_top) in
  t.conns.(slot) <- conn;
  t.rx_bytes.(slot) <- 0;
  conn.Socket.track_slot <- slot;
  t.live <- t.live + 1

let mem t conn =
  let slot = conn.Socket.track_slot in
  slot >= 0 && slot < Array.length t.conns && t.conns.(slot) == conn

let handle t conn =
  if mem t conn then (conn.Socket.track_slot lsl stamp_bits) lor t.stamps.(conn.Socket.track_slot)
  else null_handle

let find t h =
  if h < 0 then None
  else
    let slot = handle_slot h in
    if slot >= Array.length t.conns then None
    else
      let conn = t.conns.(slot) in
      (* Stamp and occupancy: a handle issued before the slot turned over
         carries the old generation and is rejected here. *)
      if conn != t.dummy && t.stamps.(slot) = handle_stamp h then Some conn else None

(* Vacate a slot: drop the occupant, zero the rx mirror, advance the
   generation (wrapping at 2^28) so outstanding handles go stale. *)
let vacate t slot =
  t.conns.(slot) <- t.dummy;
  t.rx_bytes.(slot) <- 0;
  t.stamps.(slot) <- (t.stamps.(slot) + 1) land stamp_mask;
  t.free.(t.free_top) <- slot;
  t.free_top <- t.free_top + 1;
  t.live <- t.live - 1

let remove t conn =
  let slot = conn.Socket.track_slot in
  if slot >= 0 && slot < Array.length t.conns && t.conns.(slot) == conn then begin
    conn.Socket.track_slot <- -1;
    vacate t slot;
    true
  end
  else false

let rx_add t conn delta =
  let slot = conn.Socket.track_slot in
  if slot >= 0 && slot < Array.length t.conns && t.conns.(slot) == conn then
    t.rx_bytes.(slot) <- t.rx_bytes.(slot) + delta

let rx_of t conn =
  let slot = conn.Socket.track_slot in
  if slot >= 0 && slot < Array.length t.conns && t.conns.(slot) == conn then t.rx_bytes.(slot)
  else 0

let rx_total t =
  let rx = t.rx_bytes in
  let acc = ref 0 in
  for i = 0 to Array.length rx - 1 do
    acc := !acc + Array.unsafe_get rx i
  done;
  !acc

let iter t f =
  let conns = t.conns in
  for i = 0 to Array.length conns - 1 do
    let c = conns.(i) in
    if c != t.dummy then f c
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun c -> acc := f !acc c);
  !acc

let reap_closed t =
  let removed = ref 0 in
  let conns = t.conns in
  for i = 0 to Array.length conns - 1 do
    let c = conns.(i) in
    if c != t.dummy && c.Socket.state = Socket.Closed then begin
      c.Socket.track_slot <- -1;
      vacate t i;
      incr removed
    end
  done;
  !removed

let generation_bits = stamp_bits
