(* Slot-indexed connection registry.  The previous representation — a
   [Socket.conn list] rebuilt with [List.filter] on every prune — made
   close/reap O(live connections) and allocated a fresh spine each sweep.
   Here every tracked connection owns a slot in a flat array, found again
   in O(1) through the [track_slot] index stamped on the connection
   itself, and a free-list of slot indexes makes add/remove allocation-
   free in the steady state (the arrays only grow, by doubling, when the
   peak population grows). *)

type t = {
  mutable slots : Socket.conn array; (* [dummy] marks a vacant slot *)
  dummy : Socket.conn;
  mutable free : int array; (* stack of vacant slot indexes *)
  mutable free_top : int;
  mutable live : int;
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  (* The dummy connection is never exposed; it only keeps vacant slots
     from pinning real payloads. *)
  let dummy =
    Socket.make_conn ~src:(Ipaddr.v 0 0 0 0) ~src_port:0 ~client:Socket.null_handlers
      ~now:Engine.Simtime.zero
  in
  {
    slots = Array.make capacity dummy;
    dummy;
    free = Array.init capacity (fun i -> capacity - 1 - i);
    free_top = capacity;
    live = 0;
  }

let length t = t.live

let grow t =
  let n = Array.length t.slots in
  let slots = Array.make (2 * n) t.dummy in
  Array.blit t.slots 0 slots 0 n;
  t.slots <- slots;
  let free = Array.make (2 * n) 0 in
  Array.blit t.free 0 free 0 t.free_top;
  for i = 0 to n - 1 do
    free.(t.free_top + i) <- (2 * n) - 1 - i
  done;
  t.free <- free;
  t.free_top <- t.free_top + n

let add t conn =
  if conn.Socket.track_slot >= 0 then invalid_arg "Conn_table.add: connection already tracked";
  if t.free_top = 0 then grow t;
  t.free_top <- t.free_top - 1;
  let slot = t.free.(t.free_top) in
  t.slots.(slot) <- conn;
  conn.Socket.track_slot <- slot;
  t.live <- t.live + 1

let remove t conn =
  let slot = conn.Socket.track_slot in
  if slot >= 0 && slot < Array.length t.slots && t.slots.(slot) == conn then begin
    t.slots.(slot) <- t.dummy;
    conn.Socket.track_slot <- -1;
    t.free.(t.free_top) <- slot;
    t.free_top <- t.free_top + 1;
    t.live <- t.live - 1;
    true
  end
  else false

let iter t f =
  let slots = t.slots in
  for i = 0 to Array.length slots - 1 do
    let c = slots.(i) in
    if c != t.dummy then f c
  done

let fold t ~init f =
  let acc = ref init in
  iter t (fun c -> acc := f !acc c);
  !acc

let reap_closed t =
  let removed = ref 0 in
  let slots = t.slots in
  for i = 0 to Array.length slots - 1 do
    let c = slots.(i) in
    if c != t.dummy && c.Socket.state = Socket.Closed then begin
      slots.(i) <- t.dummy;
      c.Socket.track_slot <- -1;
      t.free.(t.free_top) <- i;
      t.free_top <- t.free_top + 1;
      t.live <- t.live - 1;
      incr removed
    end
  done;
  !removed

let mem t conn =
  let slot = conn.Socket.track_slot in
  slot >= 0 && slot < Array.length t.slots && t.slots.(slot) == conn
