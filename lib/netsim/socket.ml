type conn_state = Syn_rcvd | Established | Close_wait | Closed

type conn = {
  conn_id : int;
  src : Ipaddr.t;
  src_port : int;
  mutable state : conn_state;
  mutable container : Rescont.Container.t option;
  mutable rx_mem_owner : Rescont.Container.t option;
  rx_queue : Payload.t Queue.t;
  mutable listen : listen option;
  client : client_handlers;
  mutable syn_arrival : Engine.Simtime.t;
  mutable last_delivery : Engine.Simtime.t;
      (** Client-bound events are FIFO per connection: nothing may overtake
          earlier data on the wire. *)
  mutable track_slot : int;
      (** Slot index in the owning stack's {!Conn_table}; -1 when
          untracked.  Kernel-private. *)
  mutable steer_cpu : int;
      (** Processor this connection's interrupt work is steered to (the
          stack's RSS hash of the flow); 0 on a uniprocessor.
          Kernel-private. *)
}

and listen = {
  listen_id : int;
  port : int;
  filter : Filter.t;
  mutable listen_container : Rescont.Container.t option;
  accept_queue : conn Queue.t;
  backlog : int;
  syn_queue : conn Queue.t;
  syn_backlog : int;
  mutable syn_drops : int;
  mutable accept_drops : int;
}

and client_handlers = {
  on_established : conn -> unit;
  on_refused : unit -> unit;
  on_response : conn -> Payload.t -> unit;
  on_closed : conn -> unit;
}

let null_handlers =
  {
    on_established = (fun _ -> ());
    on_refused = (fun () -> ());
    on_response = (fun _ _ -> ());
    on_closed = (fun _ -> ());
  }

(* Atomic for parallel sweep domains; ids are identity-only, never ordered
   across rigs. *)
let next_listen_id = Atomic.make 0
let next_conn_id = Atomic.make 0

let make_listen ?(filter = Filter.any) ?(backlog = 128) ?(syn_backlog = 1024) ?container ~port
    () =
  if backlog <= 0 || syn_backlog <= 0 then invalid_arg "Socket.make_listen: empty backlog";
  {
    listen_id = Atomic.fetch_and_add next_listen_id 1 + 1;
    port;
    filter;
    listen_container = container;
    accept_queue = Queue.create ();
    backlog;
    syn_queue = Queue.create ();
    syn_backlog;
    syn_drops = 0;
    accept_drops = 0;
  }

let make_conn ~src ~src_port ~client ~now =
  {
    conn_id = Atomic.fetch_and_add next_conn_id 1 + 1;
    src;
    src_port;
    state = Syn_rcvd;
    container = None;
    rx_mem_owner = None;
    rx_queue = Queue.create ();
    listen = None;
    client;
    syn_arrival = now;
    last_delivery = now;
    track_slot = -1;
    steer_cpu = 0;
  }

let conn_container_or conn ~default =
  match conn.container with
  | Some c -> c
  | None -> (
      match conn.listen with
      | Some l -> ( match l.listen_container with Some c -> c | None -> default)
      | None -> default)

let bind_container conn container =
  (* Buffered bytes were charged to the connection's previous principal;
     the charge moves with the binding (§4.6 moves resources between
     containers), or the new principal's balance would go negative when
     the application drains data that arrived before the rebind. *)
  (match conn.rx_mem_owner with
  | Some old when Rescont.Container.id old <> Rescont.Container.id container ->
      let buffered = Queue.fold (fun acc p -> acc + p.Payload.bytes) 0 conn.rx_queue in
      if buffered > 0 then begin
        Rescont.Container.charge_memory old (-buffered);
        Rescont.Container.charge_memory container buffered
      end;
      conn.rx_mem_owner <- Some container
  | Some _ | None -> ());
  (match conn.container with
  | Some old -> Rescont.Usage.decr_kernel_objects (Rescont.Container.usage old)
  | None -> ());
  conn.container <- Some container;
  Rescont.Usage.incr_kernel_objects (Rescont.Container.usage container)

let readable conn =
  (not (Queue.is_empty conn.rx_queue)) || conn.state = Close_wait

let accept_ready listen = not (Queue.is_empty listen.accept_queue)
