type t = int32

let check_octet o = if o < 0 || o > 255 then invalid_arg "Ipaddr: octet outside [0,255]"

let v a b c d =
  check_octet a;
  check_octet b;
  check_octet c;
  check_octet d;
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d)
      with
      | Some a, Some b, Some c, Some d -> v a b c d
      | _ -> invalid_arg (Printf.sprintf "Ipaddr.of_string: %S" s))
  | _ -> invalid_arg (Printf.sprintf "Ipaddr.of_string: %S" s)

let octet t shift = Int32.to_int (Int32.logand (Int32.shift_right_logical t shift) 0xFFl)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" (octet t 24) (octet t 16) (octet t 8) (octet t 0)

let equal = Int32.equal
let compare = Int32.unsigned_compare
let hash t = Int32.to_int t land 0xFFFFFFFF

let mask_of_bits bits =
  if bits < 0 || bits > 32 then invalid_arg "Ipaddr: prefix length outside [0,32]";
  if bits = 0 then 0l else Int32.shift_left (-1l) (32 - bits)

let in_prefix addr ~template ~bits =
  let mask = mask_of_bits bits in
  Int32.equal (Int32.logand addr mask) (Int32.logand template mask)

let offset base n = Int32.add base (Int32.of_int n)
let pp ppf t = Format.pp_print_string ppf (to_string t)
