module Sim = Engine.Sim
module Simtime = Engine.Simtime

type t = {
  sim : Sim.t;
  mutable machines : (Ipaddr.t * Stack.t) list; (* reverse attachment order *)
}

let create ~sim () = { sim; machines = [] }

let lookup t addr =
  List.find_map
    (fun (a, stack) -> if Ipaddr.equal a addr then Some stack else None)
    t.machines

let attach t ~addr stack =
  (match lookup t addr with
  | Some _ -> invalid_arg (Printf.sprintf "Net.attach: %s already attached" (Ipaddr.to_string addr))
  | None -> ());
  t.machines <- (addr, stack) :: t.machines

let machines t = List.rev t.machines

let connect t ~src ~dst ?src_port ~port ~handlers () =
  match lookup t dst with
  | Some stack -> Stack.connect stack ~src ?src_port ~port ~handlers ()
  | None ->
      (* No route to host: fail like a refused connection, one RTT later. *)
      Sim.post t.sim (Simtime.us 300) (fun () -> handlers.Socket.on_refused ())
