(** The simulated TCP/IP subsystem, with three kernel execution models for
    received-packet processing (paper §3.2, §4.7):

    - {b Softirq} — the unmodified kernel: all protocol processing runs at
      interrupt level, strictly above any thread, in FIFO arrival order,
      and is charged to whatever resource principal happens to be running
      ("the unlucky process"), or to the system when idle.  Under overload
      this model exhibits receive livelock.
    - {b Lrp} — Lazy Receiver Processing: the interrupt handler only
      demultiplexes; protocol processing is deferred to a per-process
      kernel thread scheduled at the receiving process's priority and
      charged to the receiving process's container.
    - {b Rc} — the paper's system: like LRP, but the queueing, charging
      and servicing unit is the {e resource container} bound to the socket
      or connection.  Queues are drained in container-priority order;
      idle-class containers (priority 0) are drained only when the CPU
      would otherwise idle; per-container queue overflow discards packets
      at interrupt level for no further cost (early discard).

    The client side of the network (remote machines, switch) is abstract
    and infinitely fast: client behaviour lives in callbacks invoked after
    the configured one-way latency. *)

type mode = Softirq | Lrp | Rc

(** Per-packet/operation kernel CPU costs.  Defaults are calibrated in
    {!Httpsim.Costs} against the paper's §5.3 per-request budgets. *)
type costs = {
  irq_per_packet : Engine.Simtime.span;  (** NIC interrupt handler. *)
  demux : Engine.Simtime.span;  (** Early demultiplex / packet filter. *)
  syn_process : Engine.Simtime.span;
      (** TCP SYN processing including the SYN|ACK transmission. *)
  ack_process : Engine.Simtime.span;  (** Handshake-completing ACK. *)
  data_rx_process : Engine.Simtime.span;  (** Per received data packet. *)
  fin_process : Engine.Simtime.span;
  tx_per_packet : Engine.Simtime.span;  (** Send-path processing per packet. *)
  conn_teardown : Engine.Simtime.span;  (** PCB and buffer release. *)
}

val default_costs : costs

type stats = {
  mutable syns_received : int;
  mutable syn_queue_drops : int;  (** evicted on SYN-queue overflow *)
  mutable accept_queue_drops : int;
  mutable rx_queue_drops : int;  (** early discards at per-container queues *)
  mutable packets_processed : int;
  mutable conns_established : int;
  mutable conns_closed : int;
  mutable refused : int;  (** no matching listen socket *)
}

type t

type softirq_charge =
  | Charge_current
      (** Softirq time is charged to whatever principal is running — "the
          unlucky process" (§3.1). *)
  | Charge_system
      (** Softirq time is charged "to no process at all": it lands on the
          system (root) container and is invisible to the scheduler.  This
          matches the behaviour the paper measured in Fig. 13, where the
          main server got {e more} than its fair share because its kernel
          network processing was not charged to it. *)

val create :
  ?mtu:int ->
  ?latency:Engine.Simtime.span ->
  ?costs:costs ->
  ?link_mbps:float ->
  ?queue_cap:int ->
  ?syn_timeout:Engine.Simtime.span ->
  ?softirq_charge:softirq_charge ->
  machine:Procsim.Machine.t ->
  mode:mode ->
  owner:Rescont.Container.t ->
  unit ->
  t
(** [owner] is the container charged for deferred protocol processing when
    no more specific container is bound (in [Lrp] mode: always; in [Rc]
    mode: the fallback) — normally the server process's default container.
    [queue_cap] bounds each deferred-processing queue (default 64 packets,
    like a BSD [ipintrq]).  Defaults: MTU 1460, one-way latency 150 µs,
    100 Mbps access link (message delivery takes latency plus
    serialisation time at the link rate), SYN timeout 75 s. *)

val machine : t -> Procsim.Machine.t
val mode : t -> mode
val stats : t -> stats
val costs : t -> costs
val latency : t -> Engine.Simtime.span

val add_on_event : t -> (unit -> unit) -> unit
(** Register a callback invoked whenever a socket becomes readable or
    acceptable; server applications use it to wake their event loops.
    Callbacks chain — several applications may share the stack. *)

val set_on_event : t -> (unit -> unit) -> unit
(** Alias of {!add_on_event} (kept for symmetry with the single-server
    experiments). *)

val set_on_readable : t -> (Socket.conn -> unit) -> unit
(** Register the edge-triggered readability callback: invoked with the
    connection when its rx queue goes from empty to non-empty, and when
    the peer closes an [Established] connection with nothing buffered
    (EOF).  Unlike {!add_on_event} this identifies {i which} connection
    woke up, so a server over 10^5+ connections can keep a ready list
    instead of scanning every tracked connection per wakeup (the
    select-style {!add_on_event} servers are O(connections) per poll).
    One callback per stack; registering replaces the previous one. *)

val set_on_syn_drop : t -> (Socket.listen -> Ipaddr.t -> unit) -> unit
(** The §5.7 kernel modification: notify the application when a SYN is
    dropped due to queue overflow, identifying the source. *)

(** {1 Server-side interface} *)

val add_listen : t -> Socket.listen -> unit
(** Register a listening socket.  Several sockets may share a port with
    different filters (§4.8); incoming SYNs go to the most specific match. *)

val remove_listen : t -> Socket.listen -> unit

val accept : t -> Socket.listen -> Socket.conn option
(** Dequeue an established connection (non-blocking).  The caller is
    responsible for charging the accept system-call cost. *)

val recv : t -> Socket.conn -> Payload.t option
(** Dequeue a received message (non-blocking). *)

val send : t -> Socket.conn -> Payload.t -> unit
(** Transmit a response.  Must be called from a machine thread: the
    send-path kernel cost is consumed by the calling thread (and charged
    to its current resource binding).  Delivery callbacks fire after the
    one-way latency. *)

val close : t -> Socket.conn -> unit
(** Server-initiated close; consumes teardown cost on the calling thread. *)

(** {1 Client-side interface} *)

val connect :
  t -> src:Ipaddr.t -> ?src_port:int -> port:int -> handlers:Socket.client_handlers -> unit -> unit
(** A remote client opens a connection: a SYN arrives after the one-way
    latency, and the handshake completes (or fails) through the normal
    path, invoking the handlers. *)

val client_send : t -> Socket.conn -> Payload.t -> unit
(** The remote client sends a request on an established connection. *)

val client_close : t -> Socket.conn -> unit

val inject_syn : t -> src:Ipaddr.t -> port:int -> unit
(** A bogus SYN (spoofed source, never completes the handshake): the
    SYN-flood attack packet of §5.7.  Arrives immediately. *)

val inject_connect :
  t -> src:Ipaddr.t -> src_port:int -> port:int -> handlers:Socket.client_handlers -> unit
(** External arrival injection: a genuine connection attempt whose SYN
    hits the NIC at the instant of the call — no per-arrival scheduled
    closure and no client-side latency (the injector models its own wire
    delay).  Must be called from inside a simulation event; open-loop
    arrival processes (the cluster balancer) use this to drive 10^5-10^6
    connections without allocating a closure per arrival. *)

val inject_connect_at :
  t ->
  at:Engine.Simtime.t ->
  src:Ipaddr.t ->
  src_port:int ->
  port:int ->
  handlers:Socket.client_handlers ->
  unit
(** {!inject_connect} deferred to a future instant of this machine's sim:
    the cross-shard dispatch primitive.  A balancer running in another
    shard's event core records the arrival in a mailbox during a window
    and the barrier posts it here with [at >= window end], which is what
    keeps sharded execution conservative (no event is ever delivered into
    a shard's past).  Unlike {!inject_connect} this schedules one
    fire-and-forget event per arrival.
    @raise Invalid_argument if [at] is in this machine's past. *)

val syn_delivery_delay : t -> Engine.Simtime.span
(** Wire time of a bare SYN segment (40 bytes, the size the receive path
    charges per connection attempt): one-way latency plus serialisation
    at the link rate.  This is the balancer->machine delivery delay, and
    therefore the lookahead bound the cluster's window protocol derives
    its default window from. *)

val add_service :
  ?cpu:int ->
  t ->
  name:string ->
  home:Rescont.Container.t ->
  covers:(Rescont.Container.t -> bool) ->
  unit
(** Add a per-process network kernel thread (paper §5.1) responsible for
    the deferred protocol processing of every container satisfying
    [covers]; more recently added services take precedence over earlier
    ones, and the stack's built-in catch-all service handles the rest.
    [home] is the thread's fallback container.  [cpu] pins the kthread to
    a processor (the stack's own per-CPU netisr threads use this; steered
    work signals the kthread pinned to its flow's CPU first).  No-op in
    [Softirq] mode. *)

val flow_hash : Ipaddr.t -> int -> int
(** [flow_hash src src_port] is the flow-identity hash shared by RSS
    steering and the cluster balancer's consistent hashing: deterministic,
    avalanche-mixed, and guaranteed non-negative (the sign bit is masked
    as the final step, after the overflowing multiplies — consumers may
    reduce it with [mod] directly). *)

val rss_steer : t -> Ipaddr.t -> int -> int
(** [rss_steer t src src_port] is the processor the flow hashes to:
    [flow_hash src src_port mod cpus] — deterministic, uniform-ish over
    [0, cpus), always 0 on a uniprocessor.  Every packet of a connection
    shares its steering. *)

(** {1 Introspection} *)

val pending_work : t -> int
(** Packets queued for deferred protocol processing (LRP/RC modes). *)

val queue_table_size : t -> int
(** Containers with a deferred-processing queue.  Bounded by the live
    container population: queues are torn down with their container. *)

val stamp_table_size : t -> int
(** Containers with a recorded last-served tick (same lifetime as the
    queue table). *)

val listens : t -> Socket.listen list

val demux_lookup : t -> port:int -> src:Ipaddr.t -> Socket.listen option
(** The production early demultiplexer: first match in the port-indexed,
    specificity-sorted {!Demux} table. *)

val demux_reference : t -> port:int -> src:Ipaddr.t -> Socket.listen option
(** Reference demux semantics — a fold over every listen socket picking
    the most specific match, ties to the earliest bound.  Executable
    specification for the QCheck equivalence property; not on the packet
    path. *)

val delivery_delay : t -> Payload.t -> Engine.Simtime.span
(** Wire time of a payload on the access link: one-way latency plus
    serialisation at the link rate.  Exposed so measurement code can
    recover a message's arrival instant from its [created] stamp (the
    cluster experiments compute server-side sojourns this way). *)

val reap : t -> int
(** Remove closed connections from the registry, returning how many were
    removed.  Connections already leave the registry the moment they
    close, so this normally removes nothing — and, unlike the old
    list-rebuild prune, performs no allocation when it doesn't. *)

val tracked_conns : t -> int
(** Non-closed connections currently in the registry. *)

val pool_stats : t -> int * int * int * int
(** [(allocated, free, in_service, queued)] work items in the packet-work
    pool; see {!Workpool.stats}. *)
