#!/bin/sh
# CI gate: build everything, run the test suites, and check the
# fast-path benchmarks against the committed baseline (BENCH_PR1.json).
# Referenced from README.md "Install and build".
set -eu
cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== dune build @bench-check"
dune build @bench-check

echo "== fuzz smoke (fixed seeds, invariants armed)"
dune exec bin/rc_sim.exe -- fuzz --seeds 5

echo "== fuzz self-test (planted mis-charge must be caught)"
dune exec bin/rc_sim.exe -- fuzz --seed 1 --mode rc --inject mischarge \
  --trace-out "${TMPDIR:-/tmp}/rc-fuzz-selftest.trace.jsonl"

echo "CI gate passed."
