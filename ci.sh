#!/bin/sh
# CI gate: build everything, run the test suites, check the fast-path
# benchmarks against the committed baseline (BENCH_PR10.json), and verify
# the sharded-execution determinism contract (shards=N byte-identical to
# shards=1).  Referenced from README.md "Install and build".
set -eu
cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== bench smoke (tiny quotas, both Sim backends; executes the harness, gates nothing)"
dune exec bench/main.exe -- --json --smoke --label ci-smoke > /dev/null

echo "== dune build @bench-check"
dune build @bench-check

echo "== event-core A/B + PR1-to-now trend (informational, never fails)"
dune exec bench/compare.exe -- BENCH_PR1.json BENCH_PR10.json --threshold 1000 || true

echo "== sweep smoke (2 jobs must match the serial report byte-for-byte)"
dune exec bin/rc_sim.exe -- sweep --fast --jobs 1 --json-out "${TMPDIR:-/tmp}/rc-sweep-j1.json"
dune exec bin/rc_sim.exe -- sweep --fast --jobs 2 --json-out "${TMPDIR:-/tmp}/rc-sweep-j2.json"
cmp "${TMPDIR:-/tmp}/rc-sweep-j1.json" "${TMPDIR:-/tmp}/rc-sweep-j2.json"

echo "== sharded determinism (cluster oracle at shards=4 must match shards=1 byte-for-byte)"
dune exec bin/rc_sim.exe -- cluster --fast --machines 4 --shards 1 \
  --json-out "${TMPDIR:-/tmp}/rc-cluster-s1.json" > /dev/null
dune exec bin/rc_sim.exe -- cluster --fast --machines 4 --shards 4 \
  --json-out "${TMPDIR:-/tmp}/rc-cluster-s4.json" > /dev/null
cmp "${TMPDIR:-/tmp}/rc-cluster-s1.json" "${TMPDIR:-/tmp}/rc-cluster-s4.json"

echo "== fuzz smoke (fixed seeds, invariants armed, 2 jobs)"
dune exec bin/rc_sim.exe -- fuzz --seeds 5 --jobs 2

echo "== fuzz smoke at 2 and 4 processors (same seeds, per-CPU laws armed)"
dune exec bin/rc_sim.exe -- fuzz --seeds 3 --cpus 2 --jobs 2
dune exec bin/rc_sim.exe -- fuzz --seeds 3 --cpus 4 --jobs 2

echo "== zipf fuzz smoke (large-Zipf corpora, arena cache laws armed)"
dune exec bin/rc_sim.exe -- fuzz --seeds 4 --zipf --jobs 2

echo "== zipf experiment smoke (2e4-doc corpus, flash crowd, invariants armed)"
dune exec bin/rc_sim.exe -- zipf --fast > /dev/null

echo "== cluster fuzz smoke (2 and 4 machines behind the balancer, rollup law armed)"
dune exec bin/rc_sim.exe -- fuzz --seeds 4 --machines 2 --jobs 2
dune exec bin/rc_sim.exe -- fuzz --seeds 4 --machines 4 --jobs 2

echo "== sharded cluster fuzz smoke (same scenarios split over 4 event cores)"
dune exec bin/rc_sim.exe -- fuzz --seeds 3 --machines 4 --shards 4

echo "== cluster oracle gate (M/G/1-PS closed form within 5% at >= 1e5 concurrent conns, sharded)"
dune exec bin/rc_sim.exe -- cluster --check --shards 8 > /dev/null

echo "== SMP experiments smoke (steering livelock confinement + sharded fixed shares)"
dune exec bin/rc_sim.exe -- smp --fast > /dev/null

echo "== fuzz self-test (planted mis-charge must be caught)"
dune exec bin/rc_sim.exe -- fuzz --seed 1 --mode rc --inject mischarge \
  --trace-out "${TMPDIR:-/tmp}/rc-fuzz-selftest.trace.jsonl"

echo "CI gate passed."
