#!/bin/sh
# CI gate: build everything, run the test suites, and check the
# fast-path benchmarks against the committed baseline (BENCH_PR5.json).
# Referenced from README.md "Install and build".
set -eu
cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== dune build @bench-check"
dune build @bench-check

echo "== event-core A/B + PR1-to-now trend (informational, never fails)"
dune exec bench/compare.exe -- BENCH_PR1.json BENCH_PR5.json --threshold 1000 || true

echo "== sweep smoke (2 jobs must match the serial report byte-for-byte)"
dune exec bin/rc_sim.exe -- sweep --fast --jobs 1 --json-out "${TMPDIR:-/tmp}/rc-sweep-j1.json"
dune exec bin/rc_sim.exe -- sweep --fast --jobs 2 --json-out "${TMPDIR:-/tmp}/rc-sweep-j2.json"
cmp "${TMPDIR:-/tmp}/rc-sweep-j1.json" "${TMPDIR:-/tmp}/rc-sweep-j2.json"

echo "== fuzz smoke (fixed seeds, invariants armed, 2 jobs)"
dune exec bin/rc_sim.exe -- fuzz --seeds 5 --jobs 2

echo "== fuzz self-test (planted mis-charge must be caught)"
dune exec bin/rc_sim.exe -- fuzz --seed 1 --mode rc --inject mischarge \
  --trace-out "${TMPDIR:-/tmp}/rc-fuzz-selftest.trace.jsonl"

echo "CI gate passed."
