(* Compare two BENCH_*.json documents produced by [main.exe --json].

   Usage: compare.exe BASELINE.json CURRENT.json [--threshold F]
            [--alloc-threshold F] [--alloc-floor F]

   CURRENT may be "-" to read from stdin (used by the @bench-check alias,
   which pipes a fresh --json run against the committed baseline).

   Every metric is lower-is-better; a metric regresses when

     current > baseline * (1 + threshold)

   The default threshold of 0.75 (and the even looser 2.0 used by the
   @bench-check alias, whose --fast quotas make sub-microsecond metrics
   jittery) is deliberately loose: these are wall-clock measurements on
   whatever machine runs the check, so the gate is meant to catch
   order-of-magnitude fast-path regressions — a reintroduced O(n) walk
   shows up as 10-20x, not 2x.

   Allocation metrics (unit "mw/op", minor words per operation) are
   deterministic counts, not wall-clock samples, so they get their own
   much tighter gate: --alloc-threshold, default 0.10 — a 10% allocation
   growth on a hot path is a real regression even when the clock cannot
   see it.  A relative gate alone misfires on metrics that are already
   (amortised) zero — e.g. 0.09 -> 0.14 mw/op is a 1.5x "growth" that is
   really quantisation noise from amortised table doubling spread over a
   batch — so an allocation regression must also clear --alloc-floor
   (default 1.0): the absolute growth must be at least one word per
   operation.  Exit status is non-zero if any shared metric regresses.
   Metrics present on only one side are reported but never fail the
   check, so the baseline does not have to be regenerated in lockstep
   with benchmark additions. *)

(* {1 A minimal JSON reader}

   The repo deliberately has no JSON dependency; this parser covers the
   complete JSON grammar in a few dozen lines, which is all these small
   benchmark documents need. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char b '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Benchmark names are ASCII; anything else round-trips as '?'. *)
              Buffer.add_char b (if code < 128 then Char.chr code else '?');
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* {1 Benchmark documents} *)

let read_file path =
  if path = "-" then In_channel.input_all In_channel.stdin
  else In_channel.with_open_text path In_channel.input_all

let field name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let load path =
  let doc =
    try parse_json (read_file path)
    with Parse_error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  in
  (match field "schema_version" doc with
  | Some (Num 1.) -> ()
  | _ -> failwith (path ^ ": unsupported or missing schema_version"));
  let label =
    match field "label" doc with Some (Str l) -> l | _ -> "?"
  in
  let metrics =
    match field "metrics" doc with
    | Some (List ms) ->
        List.filter_map
          (fun m ->
            match (field "name" m, field "value" m, field "unit" m) with
            | Some (Str name), Some (Num value), Some (Str unit_) -> Some (name, (value, unit_))
            | _ -> None)
          ms
    | _ -> failwith (path ^ ": no metrics array")
  in
  (label, metrics)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let threshold = ref 0.75 in
  let alloc_threshold = ref 0.10 in
  let alloc_floor = ref 1.0 in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> threshold := f
        | _ -> prerr_endline "compare: --threshold expects a non-negative float"; exit 2);
        parse_args rest
    | "--alloc-threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> alloc_threshold := f
        | _ -> prerr_endline "compare: --alloc-threshold expects a non-negative float"; exit 2);
        parse_args rest
    | "--alloc-floor" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f >= 0. -> alloc_floor := f
        | _ -> prerr_endline "compare: --alloc-floor expects a non-negative float"; exit 2);
        parse_args rest
    | arg :: rest ->
        files := arg :: !files;
        parse_args rest
  in
  parse_args args;
  match List.rev !files with
  | [ base_path; cur_path ] ->
      let base_label, base = load base_path in
      let cur_label, cur = load cur_path in
      Printf.printf
        "benchmark compare: baseline %S vs current %S (threshold +%.0f%%, alloc +%.0f%%)\n"
        base_label cur_label (100. *. !threshold) (100. *. !alloc_threshold);
      let regressions = ref 0 in
      (* Per-unit speedup accumulators (sum of log(baseline/current) over
         shared metrics with positive values) for the geometric-mean
         summary, and the regressed metrics with their slowdown ratios so
         a failing run leads with its worst offenders. *)
      let units : (string * (float ref * int ref)) list ref = ref [] in
      let regressed : (string * float) list ref = ref [] in
      List.iter
        (fun (name, (bv, unit_)) ->
          match List.assoc_opt name cur with
          | None -> Printf.printf "  [only-baseline] %s\n" name
          | Some (cv, _) ->
              let is_alloc = unit_ = "mw/op" in
              let t = if is_alloc then !alloc_threshold else !threshold in
              let ratio = if bv > 0. then cv /. bv else Float.infinity in
              if bv > 0. && cv > 0. then begin
                let lsum, n =
                  match List.assoc_opt unit_ !units with
                  | Some cell -> cell
                  | None ->
                      let cell = (ref 0., ref 0) in
                      units := (unit_, cell) :: !units;
                      cell
                in
                lsum := !lsum +. log (bv /. cv);
                incr n
              end;
              let above_floor = (not is_alloc) || cv -. bv >= !alloc_floor in
              let verdict =
                if cv > bv *. (1. +. t) && above_floor then begin
                  incr regressions;
                  regressed := (name, ratio) :: !regressed;
                  "REGRESSED"
                end
                else if bv > cv *. (1. +. t) then "improved"
                else "ok"
              in
              Printf.printf "  [%-9s] %-60s %12.6g -> %12.6g %s (%.2fx)\n" verdict name bv cv
                unit_ ratio)
        base;
      List.iter
        (fun (name, _) ->
          if List.assoc_opt name base = None then Printf.printf "  [only-current] %s\n" name)
        cur;
      (* Geometric mean of baseline/current per unit: >1.00x means the
         current run is faster (or allocates less) on average. *)
      List.iter
        (fun (unit_, (lsum, n)) ->
          if !n > 0 then
            Printf.printf "geomean speedup [%s]: %.2fx over %d metric(s)\n" unit_
              (exp (!lsum /. float_of_int !n))
              !n)
        (List.rev !units);
      if !regressions > 0 then begin
        let worst = List.sort (fun (_, a) (_, b) -> compare b a) !regressed in
        let max_listed = 5 in
        Printf.printf "worst regression(s):\n";
        List.iteri
          (fun i (name, ratio) ->
            if i < max_listed then Printf.printf "  %.2fx slower  %s\n" ratio name)
          worst;
        if List.length worst > max_listed then
          Printf.printf "  ... and %d more\n" (List.length worst - max_listed);
        Printf.printf "%d metric(s) regressed beyond the threshold\n" !regressions;
        exit 1
      end
      else print_endline "no regressions"
  | _ ->
      prerr_endline
        "usage: compare.exe BASELINE.json CURRENT.json [--threshold F] [--alloc-threshold F] [--alloc-floor F]";
      exit 2
