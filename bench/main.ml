(* Benchmark harness for the Resource Containers reproduction.

   Part 1 — Table 1: Bechamel micro-benchmarks of the container primitives
   (the paper invoked each new system call 10 000 times and averaged; here
   each primitive gets a proper OLS fit over monotonic-clock samples).

   Part 2 — every figure and experiment of §5, regenerated through the
   experiment harnesses and printed as aligned tables.

   Run with: dune exec bench/main.exe            (full sweeps, ~minutes)
             dune exec bench/main.exe -- --fast  (reduced sweeps)
             dune exec bench/main.exe -- --json [--fast] [--label NAME]
               (machine-readable fast-path metrics on stdout; redirect to a
                BENCH_*.json and diff with bench/compare.exe — see the
                Benchmarking section of EXPERIMENTS.md)
             dune exec bench/main.exe -- --json --smoke
               (CI smoke: tiny quotas, output too noisy to gate on)        *)

open Bechamel
open Toolkit
module Simtime = Engine.Simtime
module Container = Rescont.Container
module Attrs = Rescont.Attrs
module Binding = Rescont.Binding
module Desc_table = Rescont.Desc_table
module Ops = Rescont.Ops

(* {1 Part 1: Table 1 micro-benchmarks} *)

let bench_create =
  Test.make ~name:"create+destroy container"
    (Staged.stage (fun () ->
         let c = Container.create_detached ~name:"bench" () in
         Container.destroy c))

let bench_rebind =
  let root = Container.create_root () in
  let parent = Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:1.0 ()) () in
  let a = Container.create ~parent () in
  let b = Container.create ~parent () in
  let binding = Binding.create ~now:Simtime.zero a in
  let flip = ref false in
  Test.make ~name:"change thread's resource binding"
    (Staged.stage (fun () ->
         flip := not !flip;
         Binding.set_resource_binding binding ~now:Simtime.zero (if !flip then b else a)))

let bench_get_usage =
  let root = Container.create_root () in
  let table = Desc_table.create () in
  let d = Ops.rc_create table ~parent:root () in
  Test.make ~name:"obtain container resource usage"
    (Staged.stage (fun () -> ignore (Ops.rc_get_usage table d)))

let bench_attrs =
  let root = Container.create_root () in
  let table = Desc_table.create () in
  let d = Ops.rc_create table ~parent:root () in
  let hi = Attrs.timeshare ~priority:9 () and lo = Attrs.timeshare ~priority:5 () in
  let flip = ref false in
  Test.make ~name:"set-get container attributes"
    (Staged.stage (fun () ->
         flip := not !flip;
         Ops.rc_set_attrs table d (if !flip then hi else lo);
         ignore (Ops.rc_get_attrs table d)))

let bench_move =
  let root = Container.create_root () in
  let src = Desc_table.create () in
  let dst = Desc_table.create () in
  let d = Ops.rc_create src ~parent:root () in
  Test.make ~name:"move container between processes"
    (Staged.stage (fun () ->
         let d' = Ops.rc_transfer ~src ~dst d in
         Desc_table.close dst d'))

let bench_handle =
  let root = Container.create_root () in
  let table = Desc_table.create () in
  let d = Ops.rc_create table ~parent:root () in
  let c = Desc_table.lookup table d in
  Test.make ~name:"obtain handle for existing container"
    (Staged.stage (fun () ->
         let d' = Ops.rc_get_handle table c in
         Desc_table.close table d'))

let bench_charge =
  let root = Container.create_root () in
  let mid = Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:1.0 ()) () in
  let leaf = Container.create ~parent:mid () in
  Test.make ~name:"charge cpu through 3-level hierarchy"
    (Staged.stage (fun () -> Container.charge_cpu leaf ~kernel:true (Simtime.us 1)))

let table1_tests =
  [
    bench_create; bench_rebind; bench_get_usage; bench_attrs; bench_move; bench_handle;
    bench_charge;
  ]

(* Bechamel's stock [Instance.minor_allocated] reads
   [(Gc.quick_stat ()).minor_words], which on OCaml 5 only reflects
   counters merged at collection boundaries — every sample reads the same
   value and the OLS slope comes out exactly 0.  [Gc.minor_words ()] reads
   the live allocation pointer of the current domain, so register our own
   measure around it. *)
module Minor_words = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()
  let get () = Gc.minor_words ()
  let label () = "minor-words"
  let unit () = "mw"
end

let minor_words_instance =
  Measure.instance (module Minor_words) (Measure.register (module Minor_words))

(* Run a group of Bechamel tests and return [(name, ns/op, minor words/op)]
   sorted by name — one OLS fit per instance over the same raw samples. *)
let ols_estimates2 ~group ~cfg tests =
  let instances = [ Instance.monotonic_clock; minor_words_instance ] in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:group tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let estimate_of results name =
    match Hashtbl.find_opt results name with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some (v :: _) -> Some v
        | Some [] | None -> None)
    | None -> None
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let words = Analyze.all ols minor_words_instance raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) times [] in
  List.sort compare
    (List.map (fun name -> (name, estimate_of times name, estimate_of words name)) names)

let ols_estimates ~group ~cfg tests =
  List.map (fun (name, ns, _) -> (name, ns)) (ols_estimates2 ~group ~cfg tests)

let table1_cfg () = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ()

let run_table1_microbench () =
  let estimates = ols_estimates ~group:"table1" ~cfg:(table1_cfg ()) table1_tests in
  let table =
    Engine.Series.table
      ~title:"Table 1: container primitive costs (Bechamel, this library) vs paper"
      ~columns:[ "operation"; "this library (ns/op)"; "paper on 500MHz Alpha (us)" ]
  in
  let paper_of name =
    if name = "table1/create+destroy container" then "2.36 + 2.10"
    else if name = "table1/change thread's resource binding" then "1.04"
    else if name = "table1/obtain container resource usage" then "2.04"
    else if name = "table1/set-get container attributes" then "2.10"
    else if name = "table1/move container between processes" then "3.15"
    else if name = "table1/obtain handle for existing container" then "1.90"
    else "-"
  in
  List.iter
    (fun (name, estimate) ->
      let estimate =
        match estimate with Some ns -> Printf.sprintf "%.1f" ns | None -> "-"
      in
      Engine.Series.add_row table [ name; estimate; paper_of name ])
    estimates;
  Format.printf "%a@." Engine.Series.pp_table table

(* {1 Part 1b: scheduler capacity micro-benchmarks}

   How expensive is a scheduling decision as the container population
   grows?  One pick+charge round trip of the prototype's multilevel
   scheduler (both the incremental implementation and its list-and-sort
   reference, so the speedup stays measured) and of the flat decay-usage
   scheduler, against 10 / 100 / 1000 runnable containers. *)

let sched_bench_policy name make_policy n =
  let root = Container.create_root () in
  let class_parent =
    Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:1.0 ()) ()
  in
  let policy = make_policy root in
  for i = 1 to n do
    let c = Container.create ~parent:class_parent ~name:(Printf.sprintf "c%d" i) () in
    let task = Sched.Task.create ~name:(Printf.sprintf "t%d" i) (Binding.create ~now:Simtime.zero c) in
    policy.Sched.Policy.enqueue task
  done;
  let now = ref 0 in
  Test.make
    ~name:(Printf.sprintf "%s pick+charge, %d containers" name n)
    (Staged.stage (fun () ->
         incr now;
         match policy.Sched.Policy.pick ~now:(Simtime.of_ns !now) with
         | Some task ->
             policy.Sched.Policy.charge
               ~container:(Sched.Task.container task)
               ~now:(Simtime.of_ns !now) (Simtime.us 10)
         | None -> ()))

let sched_tests () =
  List.concat_map
    (fun n ->
      [
        sched_bench_policy "multilevel" (fun root -> Sched.Multilevel.make ~root ()) n;
        sched_bench_policy "multilevel-ref" (fun root -> Sched.Multilevel_ref.make ~root ()) n;
        sched_bench_policy "timeshare" (fun _ -> Sched.Timeshare.make ()) n;
      ])
    [ 10; 100; 1000 ]

let sched_cfg () = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ()

(* {1 Part 1b': SMP dispatch micro-benchmarks}

   Cost of one scheduling round on a 4-processor machine: every processor
   picks and charges once, against a single shared run queue holding the
   whole task population versus per-CPU shards each holding a quarter.
   Sharding keeps each queue's population — and hence each decision —
   smaller, which is the capacity argument for per-CPU run queues. *)

let smp_cpus = 4

let smp_bench_dispatch ~sharded n =
  let root = Container.create_root () in
  let class_parent =
    Container.create ~parent:root ~attrs:(Attrs.fixed_share ~share:1.0 ()) ()
  in
  let pols =
    if sharded then Array.init smp_cpus (fun _ -> Sched.Multilevel.make ~root ())
    else Array.make smp_cpus (Sched.Multilevel.make ~root ())
  in
  for i = 1 to n do
    let c = Container.create ~parent:class_parent ~name:(Printf.sprintf "c%d" i) () in
    let task =
      Sched.Task.create ~name:(Printf.sprintf "t%d" i) (Binding.create ~now:Simtime.zero c)
    in
    pols.(i mod smp_cpus).Sched.Policy.enqueue task
  done;
  let now = ref 0 in
  Test.make
    ~name:
      (Printf.sprintf "4-CPU dispatch round, %d tasks, %s" n
         (if sharded then "per-CPU queues" else "shared queue"))
    (Staged.stage (fun () ->
         incr now;
         for cpu = 0 to smp_cpus - 1 do
           let pol = pols.(cpu) in
           match pol.Sched.Policy.pick ~now:(Simtime.of_ns !now) with
           | Some task ->
               pol.Sched.Policy.charge
                 ~container:(Sched.Task.container task)
                 ~now:(Simtime.of_ns !now) (Simtime.us 10)
           | None -> ()
         done))

let smp_tests () =
  List.concat_map
    (fun n -> [ smp_bench_dispatch ~sharded:false n; smp_bench_dispatch ~sharded:true n ])
    [ 64; 256 ]

let run_smp_microbench () =
  let estimates = ols_estimates ~group:"smp" ~cfg:(sched_cfg ()) (smp_tests ()) in
  let table =
    Engine.Series.table
      ~title:"4-processor dispatch cost: shared run queue vs per-CPU shards"
      ~columns:[ "configuration"; "ns per round" ]
  in
  List.iter
    (fun (name, estimate) ->
      let estimate =
        match estimate with Some ns -> Printf.sprintf "%.0f" ns | None -> "-"
      in
      Engine.Series.add_row table [ name; estimate ])
    estimates;
  Format.printf "%a@." Engine.Series.pp_table table

let run_sched_microbench () =
  let estimates = ols_estimates ~group:"sched" ~cfg:(sched_cfg ()) (sched_tests ()) in
  let table =
    Engine.Series.table ~title:"Scheduler decision cost vs runnable containers"
      ~columns:[ "configuration"; "ns per pick+charge" ]
  in
  List.iter
    (fun (name, estimate) ->
      let estimate =
        match estimate with Some ns -> Printf.sprintf "%.0f" ns | None -> "-"
      in
      Engine.Series.add_row table [ name; estimate ])
    estimates;
  Format.printf "%a@." Engine.Series.pp_table table

(* {1 Part 1c: event-queue micro-benchmarks}

   The same workloads against both Sim backends — the binary heap
   (executable spec) and the hierarchical timer wheel (production) — so
   the wheel's O(1) schedule/cancel claim stays measured, not asserted.

   - churn: the TCP-timer pattern that motivated Varghese & Lauck — a
     standing population of 1024 pending long timers (retransmit/keepalive
     timers that almost always get cancelled), and per op: schedule 8
     events at pseudo-random near offsets, cancel half, fire the rest.
     The heap pays O(log 1024) per operation here; the wheel does not.
   - periodic: a long-lived [Sim.every] series (a scheduler quantum) on an
     otherwise empty queue; per op, advance the clock across 10 ticks.
     This is the wheel's worst case (sparse wheel, every pop re-scans
     levels) and the heap's best (one-element heap), kept measured so the
     trade-off stays visible.  After the Sim.every closure reuse, a tick
     costs one queue insertion and no closure allocation. *)

let bench_sim_churn backend =
  let sim = Engine.Sim.create ~backend () in
  (* Standing far timers: pending throughout, never fired by the horizon
     below (the bench never simulates anywhere near an hour). *)
  for _ = 1 to 1024 do
    ignore (Engine.Sim.after sim (Simtime.sec 3600) ignore)
  done;
  let rng = ref 0x2545F49 in
  let next () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng
  in
  Test.make
    ~name:(Printf.sprintf "schedule/cancel churn over 1k pending, %s backend"
             (Engine.Sim.backend_name backend))
    (Staged.stage (fun () ->
         let handles =
           Array.init 8 (fun _ -> Engine.Sim.after sim (Simtime.ns (1 + (next () land 0xFFFF))) ignore)
         in
         for i = 0 to 3 do
           ignore (Engine.Sim.cancel sim handles.(i * 2))
         done;
         Engine.Sim.run_until sim (Simtime.add (Engine.Sim.now sim) (Simtime.ns 0x10000))))

let bench_sim_periodic backend =
  let sim = Engine.Sim.create ~backend () in
  let ticks = ref 0 in
  ignore (Engine.Sim.every sim (Simtime.us 10) (fun () -> incr ticks));
  Test.make
    ~name:(Printf.sprintf "periodic timer x10 ticks, %s backend" (Engine.Sim.backend_name backend))
    (Staged.stage (fun () ->
         Engine.Sim.run_until sim (Simtime.add (Engine.Sim.now sim) (Simtime.us 100))))

let sim_tests () =
  [
    bench_sim_churn Engine.Sim.Heap;
    bench_sim_churn Engine.Sim.Wheel;
    bench_sim_periodic Engine.Sim.Heap;
    bench_sim_periodic Engine.Sim.Wheel;
  ]

let sim_cfg () = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ()

(* {1 Part 1d: packet-path micro-benchmarks}

   The per-SYN demultiplex against both implementations — the port-indexed
   specificity-sorted table on the packet path and the fold over every
   listen socket that serves as its executable specification — at 10 and
   100 listen sockets with overlapping filters, plus churn on the
   slot-indexed connection registry against the list representation it
   replaced.  These keep the O(1)-packet-path claims measured. *)

let make_demux_stack n =
  let sim = Engine.Sim.create () in
  let root = Container.create_root () in
  let policy = Sched.Timeshare.make () in
  let machine = Procsim.Machine.create ~sim ~policy ~root () in
  let proc = Procsim.Process.create machine ~name:"bench" () in
  let stack =
    Netsim.Stack.create ~machine ~mode:Netsim.Stack.Softirq
      ~owner:(Procsim.Process.default_container proc) ()
  in
  for i = 0 to n - 1 do
    (* Overlapping prefixes of several widths plus hosts and a catch-all,
       spread over two ports, so lookups exercise the specificity order
       and the tie-breaks rather than a single lucky first hit. *)
    let filter =
      match i mod 4 with
      | 0 -> Netsim.Filter.any
      | 1 -> Netsim.Filter.prefix ~template:(Netsim.Ipaddr.v 10 (i mod 8) 0 0) ~bits:16
      | 2 -> Netsim.Filter.prefix ~template:(Netsim.Ipaddr.v 10 (i mod 8) (i mod 32) 0) ~bits:24
      | _ -> Netsim.Filter.host (Netsim.Ipaddr.v 10 (i mod 8) (i mod 32) 7)
    in
    Netsim.Stack.add_listen stack
      (Netsim.Socket.make_listen ~port:(80 + (i mod 2)) ~filter ())
  done;
  stack

let bench_demux ~listens ~table =
  let stack = make_demux_stack listens in
  let srcs = Array.init 64 (fun i -> Netsim.Ipaddr.v 10 (i mod 8) (i mod 32) 7) in
  let lookup =
    if table then Netsim.Stack.demux_lookup else Netsim.Stack.demux_reference
  in
  let k = ref 0 in
  Test.make
    ~name:(Printf.sprintf "syn demux, %d listens, %s" listens
             (if table then "port table" else "reference fold"))
    (Staged.stage (fun () ->
         k := (!k + 1) land 63;
         ignore (lookup stack ~port:80 ~src:srcs.(!k))))

let churn_conns () =
  Array.init 128 (fun i ->
      Netsim.Socket.make_conn
        ~src:(Netsim.Ipaddr.v 10 3 (i / 256) (i mod 256))
        ~src_port:0 ~client:Netsim.Socket.null_handlers ~now:Simtime.zero)

(* One close+accept at a standing population: untrack one connection and
   track it again. *)
let bench_conn_table_churn =
  let conns = churn_conns () in
  let t = Netsim.Conn_table.create () in
  Array.iter (fun c -> Netsim.Conn_table.add t c) conns;
  let k = ref 0 in
  Test.make ~name:"conn registry churn, 128 standing, slot table"
    (Staged.stage (fun () ->
         k := (!k + 1) land 127;
         ignore (Netsim.Conn_table.remove t conns.(!k));
         Netsim.Conn_table.add t conns.(!k)))

let bench_conn_list_churn =
  let conns = churn_conns () in
  let live = ref (Array.to_list conns) in
  let k = ref 0 in
  Test.make ~name:"conn registry churn, 128 standing, list reference"
    (Staged.stage (fun () ->
         k := (!k + 1) land 127;
         let c = conns.(!k) in
         live := c :: List.filter (fun c' -> c' != c) !live))

let netsim_tests () =
  [
    bench_demux ~listens:10 ~table:true;
    bench_demux ~listens:10 ~table:false;
    bench_demux ~listens:100 ~table:true;
    bench_demux ~listens:100 ~table:false;
    bench_conn_table_churn;
    bench_conn_list_churn;
  ]

let run_netsim_microbench () =
  let estimates = ols_estimates2 ~group:"netsim" ~cfg:(sim_cfg ()) (netsim_tests ()) in
  let table =
    Engine.Series.table ~title:"Packet-path cost: demux table and connection registry"
      ~columns:[ "workload"; "ns per op"; "minor words per op" ]
  in
  List.iter
    (fun (name, ns, mw) ->
      let fmt = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
      Engine.Series.add_row table [ name; fmt ns; fmt mw ])
    estimates;
  Format.printf "%a@." Engine.Series.pp_table table

let run_sim_microbench () =
  let estimates = ols_estimates2 ~group:"sim" ~cfg:(sim_cfg ()) (sim_tests ()) in
  let table =
    Engine.Series.table ~title:"Event-queue cost: binary heap vs hierarchical timer wheel"
      ~columns:[ "workload"; "ns per op"; "minor words per op" ]
  in
  List.iter
    (fun (name, ns, mw) ->
      let fmt = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
      Engine.Series.add_row table [ name; fmt ns; fmt mw ])
    estimates;
  Format.printf "%a@." Engine.Series.pp_table table

(* {1 Part 1e: file-cache churn and popularity-sampling micro-benchmarks}

   The million-document file layer's two O(1) claims, kept measured:

   - churn: a standing cache holding ~1/8 of the corpus bytes; per op, one
     lookup of a pseudo-random document drawn uniformly over the corpus,
     so most lookups miss, load and evict.  The arena pays a doc-table
     probe plus a few int-array writes regardless of population — the
     1e6-doc point must cost about the same as the 1e3-doc one (the
     flatness ratio emitted with --json) — where the reference
     implementation's eviction folds over every registered document.
   - zipf sampling: one popularity draw over 1e6 ranks, alias method vs
     the CDF-inversion executable spec (O(1) vs O(log n)). *)

let cache_doc_bytes i = 1024 * (1 + (i land 7))

let cache_corpus_bytes docs =
  let total = ref 0 in
  for i = 0 to docs - 1 do
    total := !total + cache_doc_bytes i
  done;
  !total

(* Pseudo-random doc-index sequence shared by both implementations — the
   same LCG, the same wrap — so the hit/miss mix is identical. *)
let cache_sequence docs =
  let rng = ref 0x2545F49 in
  Array.init 4096 (fun _ ->
      rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
      !rng mod docs)

let bench_cache_churn_arena docs =
  let cache =
    Httpsim.File_cache.create ~capacity_bytes:(max 4096 (cache_corpus_bytes docs / 8)) ()
  in
  let ids =
    Array.init docs (fun i -> Httpsim.Docset.intern (Printf.sprintf "/bench/%d/%d" docs i))
  in
  Array.iteri
    (fun i id -> Httpsim.File_cache.add_doc cache ~doc:id ~bytes:(cache_doc_bytes i))
    ids;
  Httpsim.File_cache.warm cache;
  let seq = Array.map (fun i -> ids.(i)) (cache_sequence docs) in
  let k = ref 0 in
  Test.make
    ~name:(Printf.sprintf "lookup churn, arena, %d docs" docs)
    (Staged.stage (fun () ->
         k := (!k + 1) land 4095;
         ignore (Httpsim.File_cache.lookup_doc cache ~doc:(Array.unsafe_get seq !k))))

let bench_cache_churn_ref docs =
  let cache =
    Httpsim.File_cache_ref.create ~capacity_bytes:(max 4096 (cache_corpus_bytes docs / 8)) ()
  in
  let paths = Array.init docs (fun i -> Printf.sprintf "/bench-ref/%d/%d" docs i) in
  Array.iteri
    (fun i path -> Httpsim.File_cache_ref.add_document cache ~path ~bytes:(cache_doc_bytes i))
    paths;
  Httpsim.File_cache_ref.warm cache;
  let seq = Array.map (fun i -> paths.(i)) (cache_sequence docs) in
  let k = ref 0 in
  Test.make
    ~name:(Printf.sprintf "lookup churn, reference, %d docs" docs)
    (Staged.stage (fun () ->
         k := (!k + 1) land 4095;
         ignore (Httpsim.File_cache_ref.lookup cache ~path:(Array.unsafe_get seq !k))))

let cache_tests () =
  [
    bench_cache_churn_arena 1_000;
    bench_cache_churn_arena 1_000_000;
    bench_cache_churn_ref 1_000;
    bench_cache_churn_ref 10_000;
  ]

let bench_zipf_sample ~alias =
  let n = 1_000_000 in
  let d = if alias then Engine.Dist.zipf ~n ~s:0.9 else Engine.Dist.zipf_cdf ~n ~s:0.9 in
  let rng = Engine.Rng.create ~seed:42 in
  Test.make
    ~name:
      (Printf.sprintf "zipf sample, %s, 1e6 ranks"
         (if alias then "alias method" else "cdf reference"))
    (Staged.stage (fun () -> ignore (Engine.Dist.sample_index d rng)))

let dist_tests () = [ bench_zipf_sample ~alias:true; bench_zipf_sample ~alias:false ]

let run_cache_microbench () =
  let estimates =
    ols_estimates2 ~group:"cache" ~cfg:(sim_cfg ()) (cache_tests ())
    @ ols_estimates2 ~group:"dist" ~cfg:(sim_cfg ()) (dist_tests ())
  in
  let table =
    Engine.Series.table
      ~title:"File-cache churn (arena vs reference) and Zipf sampling (alias vs CDF)"
      ~columns:[ "workload"; "ns per op"; "minor words per op" ]
  in
  List.iter
    (fun (name, ns, mw) ->
      let fmt = function Some v -> Printf.sprintf "%.0f" v | None -> "-" in
      Engine.Series.add_row table [ name; fmt ns; fmt mw ])
    estimates;
  Format.printf "%a@." Engine.Series.pp_table table

(* {1 Machine-readable output (--json)}

   Emits the fast-path metrics — Table-1 primitive costs, the scheduler
   pick+charge sweep and the wall-clock cost of a Figure-11-style run —
   as one JSON document on stdout:

     { "schema_version": 1, "label": "...",
       "metrics": [ {"name", "unit", "value", "better"}, ... ] }

   All metrics are "better": "lower".  [bench/compare.ml] diffs two such
   documents and fails on regressions; BENCH_PR1.json in the repo root is
   the committed baseline. *)

type metric = { m_name : string; m_unit : string; m_value : float }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_json ~label metrics =
  Printf.printf "{\n  \"schema_version\": 1,\n  \"label\": \"%s\",\n  \"metrics\": [\n"
    (json_escape label);
  let last = List.length metrics - 1 in
  List.iteri
    (fun i m ->
      Printf.printf
        "    {\"name\": \"%s\", \"unit\": \"%s\", \"value\": %.6g, \"better\": \"lower\"}%s\n"
        (json_escape m.m_name) (json_escape m.m_unit) m.m_value
        (if i = last then "" else ","))
    metrics;
  print_string "  ]\n}\n"

(* [--smoke] shrinks every quota and measurement window to the minimum
   that still exercises the code: CI runs it on every push so the bench
   harness (including both Sim backends) cannot rot between baseline
   regenerations.  Smoke numbers are far too noisy to gate on. *)
let run_json ~fast ~smoke ~mega ~label =
  let scale cfg_quota =
    if smoke then cfg_quota /. 20. else if fast then cfg_quota /. 2. else cfg_quota
  in
  (* Ledger slots are never reused, so the create+destroy churn loop
     permanently claims two arena slots per iteration — millions over a
     Bechamel quota.  Renew the domain arena between groups so one
     group's slot bloat is not live major heap that every later group's
     GC has to scan (it inflated the end-to-end and sweep wall-clocks
     ~4x before this). *)
  let renew = Rescont.Usage.renew_domain_arena in
  let t1 =
    ols_estimates ~group:"table1"
      ~cfg:(Benchmark.cfg ~limit:2000 ~quota:(Time.second (scale 0.5)) ())
      table1_tests
  in
  renew ();
  let sched =
    ols_estimates ~group:"sched"
      ~cfg:(Benchmark.cfg ~limit:1000 ~quota:(Time.second (scale 0.25)) ())
      (sched_tests ())
  in
  renew ();
  let smp =
    ols_estimates ~group:"smp"
      ~cfg:(Benchmark.cfg ~limit:1000 ~quota:(Time.second (scale 0.25)) ())
      (smp_tests ())
  in
  renew ();
  let sim =
    ols_estimates2 ~group:"sim"
      ~cfg:(Benchmark.cfg ~limit:1000 ~quota:(Time.second (scale 0.25)) ())
      (sim_tests ())
  in
  let netsim =
    ols_estimates2 ~group:"netsim"
      ~cfg:(Benchmark.cfg ~limit:1000 ~quota:(Time.second (scale 0.25)) ())
      (netsim_tests ())
  in
  (* End-to-end cost: host seconds needed to simulate one second of the
     Figure-11 rig (event API, 1 high + 20 low clients).  Normalising by
     simulated time keeps fast and full runs comparable.  Measured for
     both event-queue backends; the unsuffixed metric (the wheel, the
     production default) is the one compared against older baselines. *)
  let warmup = if smoke then Simtime.ms 100 else if fast then Simtime.ms 500 else Simtime.sec 1 in
  let measure = if smoke then Simtime.ms 200 else if fast then Simtime.sec 1 else Simtime.sec 2 in
  let sim_seconds = Simtime.span_to_sec_f warmup +. Simtime.span_to_sec_f measure in
  let fig11_wall backend =
    renew ();
    let t0 = Unix.gettimeofday () in
    ignore
      (Experiments.Exp_fig11.t_high ~backend ~warmup ~measure
         Experiments.Exp_fig11.Containers_event_api ~low_clients:20);
    (Unix.gettimeofday () -. t0) /. sim_seconds
  in
  let fig11_wheel = fig11_wall Engine.Sim.Wheel in
  let fig11_heap = fig11_wall Engine.Sim.Heap in
  (* End-to-end cost and GC pressure of each stack mode: one 16-client
     closed-loop run per mode; allocation is normalised per completed
     request so fast and full windows stay comparable. *)
  let mode_metrics =
    List.concat_map
      (fun system ->
        let mode = Experiments.Harness.system_name system in
        renew ();
        let words0 = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        let r =
          Experiments.Exp_sweep.run ~warmup ~measure
            { Experiments.Exp_sweep.system; clients = 16; seed = 1 }
        in
        let wall = Unix.gettimeofday () -. t0 in
        let words = Gc.minor_words () -. words0 in
        let per_req = if r.Experiments.Exp_sweep.completed > 0 then
            words /. float_of_int r.Experiments.Exp_sweep.completed
          else words
        in
        [
          {
            m_name = Printf.sprintf "endtoend/wall-clock per simulated second, %s mode, 16 clients" mode;
            m_unit = "s/simsec";
            m_value = wall /. sim_seconds;
          };
          {
            m_name = Printf.sprintf "gc.minor_words_per_op/endtoend %s mode, per completed request" mode;
            m_unit = "mw/op";
            m_value = per_req;
          };
        ])
      [ Experiments.Harness.Unmodified; Experiments.Harness.Lrp_sys; Experiments.Harness.Rc_sys ]
  in
  (* The same end-to-end rig on a 4-processor machine with per-CPU
     run-queue shards and RSS interrupt steering. *)
  let smp_endtoend =
    renew ();
    let t0 = Unix.gettimeofday () in
    ignore
      (Experiments.Exp_sweep.run ~cpus:4 ~warmup ~measure
         {
           Experiments.Exp_sweep.system = Experiments.Harness.Rc_sys;
           clients = 16;
           seed = 1;
         });
    (Unix.gettimeofday () -. t0) /. sim_seconds
  in
  (* The cluster rig end to end: 4 machines x 4 CPUs behind the flow-hash
     balancer, open-loop Poisson arrivals.  Wall time per simulated second
     plus allocation per completed request (the arrival path is meant to
     be allocation-free, so this also watches the injection fast path). *)
  let cluster_wall, cluster_mw =
    renew ();
    let module Cluster = Clustersim.Cluster in
    let c =
      Cluster.create ~machines:4 ~cpus:4 ~policy:Cluster.Flow_hash
        ~profile:(Cluster.Poisson 2_000.) ~seed:1 ()
    in
    Cluster.start c;
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    Cluster.run_for c (Simtime.span_add warmup measure);
    let wall = Unix.gettimeofday () -. t0 in
    let words = Gc.minor_words () -. words0 in
    let completed = Cluster.completed c in
    ( wall /. sim_seconds,
      if completed > 0 then words /. float_of_int completed else words )
  in
  (* Sharded execution: one 16-machine cluster at shards=1 vs shards=8.
     The windowed mailbox protocol is the only execution path, so both
     runs compute byte-identical results; the pair measures what sharding
     costs (barriers, mailboxes) and what it buys (domains).  On a
     multicore host the ratio approaches the core count; on a single core
     the domain cap makes shards=8 run sequentially and the ratio ~1 —
     the honest number either way. *)
  let shard_wall shards =
    renew ();
    let module Cluster = Clustersim.Cluster in
    let c =
      Cluster.create ~machines:16 ~shards ~policy:Cluster.Flow_hash
        ~profile:(Cluster.Poisson 8_000.) ~seed:1 ()
    in
    Cluster.start c;
    let t0 = Unix.gettimeofday () in
    Cluster.run_for c (Simtime.span_add warmup measure);
    (Unix.gettimeofday () -. t0) /. sim_seconds
  in
  let shard1_wall = shard_wall 1 in
  let shard8_wall = shard_wall 8 in
  (* Sweep throughput: the same 9-point grid serially and fanned across 4
     domains.  On a multicore host jobs=4 divides the wall time; on a
     single core it only adds domain overhead — both are worth knowing. *)
  let sweep_metrics =
    let points =
      Experiments.Exp_sweep.grid ~client_counts:[ 4 ] ~seeds:[ 1; 2; 3 ] ()
    in
    let s_warmup = if smoke then Simtime.ms 100 else Simtime.ms 500 in
    let s_measure =
      if smoke then Simtime.ms 100 else if fast then Simtime.ms 500 else Simtime.sec 1
    in
    let time_with jobs =
      renew ();
      let t0 = Unix.gettimeofday () in
      ignore
        (Experiments.Exp_sweep.run_grid ~warmup:s_warmup ~measure:s_measure ~jobs points);
      Unix.gettimeofday () -. t0
    in
    [
      { m_name = "sweep/wall-clock, 9-point grid, jobs=1"; m_unit = "s"; m_value = time_with 1 };
      { m_name = "sweep/wall-clock, 9-point grid, jobs=4"; m_unit = "s"; m_value = time_with 4 };
    ]
  in
  (* The million-document stages run LAST: interning 1e6 paths leaves the
     global docset (and the per-doc response memos) live in the major heap
     for the rest of the process, which measurably inflates the GC cost of
     every later in-process stage — a 19x swing on the jobs=1 sweep when
     these ran first.  Ordering them after everything gated against older
     baselines keeps those metrics comparable. *)
  renew ();
  let cache =
    ols_estimates2 ~group:"cache"
      ~cfg:(Benchmark.cfg ~limit:1000 ~quota:(Time.second (scale 0.25)) ())
      (cache_tests ())
  in
  let dist =
    ols_estimates2 ~group:"dist"
      ~cfg:(Benchmark.cfg ~limit:1000 ~quota:(Time.second (scale 0.25)) ())
      (dist_tests ())
  in
  (* The headline O(1) claim as one gate-able number: arena churn ns/op at
     1e6 docs over 1e3 docs.  1.0 = perfectly flat; the reference
     implementation's same ratio would be ~1000. *)
  let estimate_named name rows =
    List.find_map (fun (n, ns, _) -> if String.equal n name then ns else None) rows
  in
  let cache_flatness =
    match
      ( estimate_named "cache/lookup churn, arena, 1000 docs" cache,
        estimate_named "cache/lookup churn, arena, 1000000 docs" cache )
    with
    | Some small, Some large when small > 0. ->
        [
          {
            m_name = "cache.flatness/arena churn ns at 1e6 docs over 1e3";
            m_unit = "x";
            m_value = large /. small;
          };
        ]
    | _ -> []
  in
  (* The Zipf flash-crowd rig end to end: a 2e4-document corpus (2e3 under
     --smoke) on the RC system at s = 0.9, cold-start warmup, steady and
     flash-crowd phases, invariants armed — the cache/alias/doc-id path as
     the server actually drives it. *)
  let zipf_endtoend =
    renew ();
    let z_warmup = if smoke then Simtime.ms 50 else Simtime.ms 250 in
    let z_measure = if smoke then Simtime.ms 100 else Simtime.ms 500 in
    let z_docs = if smoke then 2_000 else 20_000 in
    let t0 = Unix.gettimeofday () in
    ignore
      (Experiments.Exp_zipf.run_point ~docs:z_docs ~warmup:z_warmup ~measure:z_measure
         ~spike_measure:z_measure ~s:0.9 Experiments.Harness.Rc_sys);
    (Unix.gettimeofday () -. t0)
    /. (Simtime.span_to_sec_f z_warmup +. (2. *. Simtime.span_to_sec_f z_measure))
  in
  let metrics =
    List.filter_map
      (fun (name, estimate) ->
        Option.map (fun v -> { m_name = name; m_unit = "ns/op"; m_value = v }) estimate)
      (t1 @ sched @ smp)
    @ List.filter_map
        (fun (name, ns, _) ->
          Option.map (fun v -> { m_name = name; m_unit = "ns/op"; m_value = v }) ns)
        (sim @ netsim @ cache @ dist)
    @ List.filter_map
        (fun (name, _, mw) ->
          Option.map
            (fun v -> { m_name = "gc.minor_words_per_op/" ^ name; m_unit = "mw/op"; m_value = v })
            mw)
        (sim @ netsim @ cache @ dist)
    @ cache_flatness
    @ [
        {
          m_name = "fig11/wall-clock per simulated second, event api, 20 low clients";
          m_unit = "s/simsec";
          m_value = fig11_wheel;
        };
        {
          m_name =
            "fig11/wall-clock per simulated second, event api, 20 low clients, heap backend";
          m_unit = "s/simsec";
          m_value = fig11_heap;
        };
      ]
    @ mode_metrics
    @ [
        {
          m_name = "endtoend/wall-clock per simulated second, rc mode, 16 clients, 4 cpus";
          m_unit = "s/simsec";
          m_value = smp_endtoend;
        };
        {
          m_name =
            "endtoend/wall-clock per simulated second, cluster, 4 machines x 4 cpus, flow-hash";
          m_unit = "s/simsec";
          m_value = cluster_wall;
        };
        {
          m_name = "gc.minor_words_per_op/endtoend cluster, per completed request";
          m_unit = "mw/op";
          m_value = cluster_mw;
        };
        {
          m_name =
            "endtoend/wall-clock per simulated second, cluster, 16 machines, shards=1";
          m_unit = "s/simsec";
          m_value = shard1_wall;
        };
        {
          m_name =
            "endtoend/wall-clock per simulated second, cluster, 16 machines, shards=8";
          m_unit = "s/simsec";
          m_value = shard8_wall;
        };
        {
          m_name = "endtoend/wall-clock per simulated second, zipf flash-crowd rig, rc mode";
          m_unit = "s/simsec";
          m_value = zipf_endtoend;
        };
        {
          (* shards=8 wall over shards=1 wall: 1.0 = parity, below 1 =
             sharded speedup (0.33 would be the 3x multicore target),
             above 1 = protocol overhead.  Expressed as a cost ratio so
             the compare tool's larger-is-worse convention applies. *)
          m_name = "cluster.shard-overhead/16 machines, shards=8 wall over shards=1";
          m_unit = "x";
          m_value = shard8_wall /. shard1_wall;
        };
      ]
    @ sweep_metrics
    @
    if not mega then []
    else begin
      (* The 10^6-concurrent-connection run: minutes of wall clock, opt-in
         via --mega.  Sizes are fixed (never shrunk by --fast/--smoke) so
         the metric means the same thing in every report that carries it. *)
      let module C = Experiments.Exp_cluster in
      let t0 = Unix.gettimeofday () in
      let p = C.mega_point () in
      let wall = Unix.gettimeofday () -. t0 in
      [
        {
          m_name =
            Printf.sprintf
              "megaconn/peak concurrent connections, %d machines, shards=%d"
              p.C.mp_machines p.C.mp_shards;
          m_unit = "conns";
          m_value = float_of_int p.C.mp_peak_concurrent;
        };
        {
          m_name = "megaconn/wall-clock per simulated second";
          m_unit = "s/simsec";
          m_value = wall /. p.C.mp_sim_seconds;
        };
        {
          m_name = "megaconn/completed requests in the 6 s measure window";
          m_unit = "req";
          m_value = float_of_int p.C.mp_completed;
        };
      ]
    end
  in
  emit_json ~label metrics

(* {1 Part 2: the evaluation section} *)

let print_figure fig = Format.printf "%a@." Engine.Series.pp_figure fig
let print_table t = Format.printf "%a@." Engine.Series.pp_table t

let run_experiments ~fast =
  let measure_short = if fast then Simtime.sec 2 else Simtime.sec 5 in
  Format.printf "--- §5.3 baseline ---@.";
  let baseline =
    Engine.Series.table ~title:"Baseline throughput (§5.3)"
      ~columns:[ "connection mode"; "req/s"; "paper"; "CPU/request (us)"; "paper (us)" ]
  in
  List.iter
    (fun persistent ->
      let r = Experiments.Exp_baseline.run ~measure:measure_short ~persistent () in
      Engine.Series.add_row baseline
        [
          (if persistent then "persistent" else "connection per request");
          Printf.sprintf "%.0f" r.Experiments.Exp_baseline.throughput;
          (if persistent then "9487" else "2954");
          Printf.sprintf "%.1f" r.Experiments.Exp_baseline.cpu_per_request_us;
          (if persistent then "105" else "338");
        ])
    [ false; true ];
  print_table baseline;
  Format.printf "--- Table 1 (simulated-kernel charges use the paper's values) ---@.";
  print_table (Experiments.Exp_table1.table ());
  Format.printf "--- Figure 11 ---@.";
  let low_counts = if fast then [ 0; 10; 20; 35 ] else [ 0; 5; 10; 15; 20; 25; 30; 35 ] in
  print_figure (Experiments.Exp_fig11.figure ~low_counts ~measure:measure_short ());
  Format.printf "--- Figures 12 and 13 ---@.";
  let cgi_counts = if fast then [ 0; 2; 4 ] else [ 0; 1; 2; 3; 4; 5 ] in
  let f12, f13 =
    Experiments.Exp_fig12_13.figures ~cgi_counts
      ~measure:(if fast then Simtime.sec 10 else Simtime.sec 15)
      ()
  in
  print_figure f12;
  print_figure f13;
  Format.printf "--- Figure 14 ---@.";
  let rates =
    if fast then [ 0.; 10_000.; 40_000.; 70_000. ]
    else [ 0.; 5_000.; 10_000.; 20_000.; 30_000.; 40_000.; 50_000.; 60_000.; 70_000. ]
  in
  print_figure (Experiments.Exp_fig14.figure ~rates ~measure:measure_short ());
  Format.printf "--- §5.8 virtual servers ---@.";
  print_table (Experiments.Exp_virtual.table ());
  Format.printf "--- §5.4 container overhead ---@.";
  print_table (Experiments.Exp_overhead.table ());
  Format.printf "--- disk-bandwidth extension (§4.4) ---@.";
  print_table (Experiments.Exp_disk.architecture_table ());
  print_table (Experiments.Exp_disk.pool_table ());
  print_table (Experiments.Exp_disk.isolation_table ());
  Format.printf "--- ablations ---@.";
  print_table
    (Experiments.Exp_ablation.scheduler_family_table
       ~measure:(if fast then Simtime.sec 3 else Simtime.sec 10)
       ());
  print_table (Experiments.Exp_ablation.binding_prune_table ());
  print_table (Experiments.Exp_ablation.quantum_table ());
  print_table (Experiments.Exp_ablation.smp_scaling_table ());
  print_table (Experiments.Exp_ablation.softirq_charging_table ())

let () =
  let fast = Array.exists (String.equal "--fast") Sys.argv in
  let smoke = Array.exists (String.equal "--smoke") Sys.argv in
  let mega = Array.exists (String.equal "--mega") Sys.argv in
  let opt_value name =
    let result = ref None in
    Array.iteri
      (fun i arg ->
        if arg = name && i + 1 < Array.length Sys.argv then result := Some Sys.argv.(i + 1))
      Sys.argv;
    !result
  in
  let trace_out = opt_value "--trace-out" in
  let metrics_out = opt_value "--metrics-out" in
  if trace_out <> None || metrics_out <> None then Experiments.Harness.observe ();
  (if Array.exists (String.equal "--json") Sys.argv then begin
     let label =
       match opt_value "--label" with Some label -> label | None -> "current"
     in
     run_json ~fast ~smoke ~mega ~label
   end
   else begin
     Format.printf "=== Part 1: primitive costs (real wall clock, Bechamel OLS) ===@.";
     run_table1_microbench ();
     Rescont.Usage.renew_domain_arena ();
     run_sched_microbench ();
     Rescont.Usage.renew_domain_arena ();
     run_smp_microbench ();
     Rescont.Usage.renew_domain_arena ();
     run_sim_microbench ();
     run_netsim_microbench ();
     Rescont.Usage.renew_domain_arena ();
     run_cache_microbench ();
     Rescont.Usage.renew_domain_arena ();
     Format.printf "@.=== Part 2: reproduction of the paper's evaluation (simulated) ===@.";
     run_experiments ~fast
   end);
  match Experiments.Harness.last_rig () with
  | Some rig -> Experiments.Harness.export ?trace_out ?metrics_out rig
  | None -> ()
