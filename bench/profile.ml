(* Standalone endtoend driver for profiling: runs the Exp_sweep closed
   loop (the workload behind the endtoend s/simsec gate) long enough for
   a sampling profiler to see the steady state, with none of Bechamel's
   harness in the way.

     dune exec bench/profile.exe -- [rc|lrp|unmodified] [SIMSECONDS]

   Used with gprofng/perf when hunting wall-clock regressions; not part
   of any CI alias. *)

module Simtime = Engine.Simtime

(* --sample: a built-in SIGPROF sampler for hosts where perf/gprofng
   cannot deliver samples.  Every profiling tick records the top OCaml
   frames via [Printexc.get_callstack]; the exit report counts samples
   per frame (a flat, self-ish profile good enough to rank hot paths). *)
let samples : (string, int) Hashtbl.t = Hashtbl.create 256
let total_samples = ref 0

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let inclusive : (string, int) Hashtbl.t = Hashtbl.create 256

let record_sample _ =
  incr total_samples;
  let stack = Printexc.get_callstack 10 in
  match Printexc.backtrace_slots stack with
  | None -> ()
  | Some slots ->
      let seen = Hashtbl.create 8 in
      Array.iteri
        (fun depth slot ->
          match Printexc.Slot.location slot with
          | Some loc when depth >= 1 ->
              (* Frame 0 is this handler; frame 1 is the interrupted code. *)
              let key = Printf.sprintf "%s:%d" loc.filename loc.line_number in
              if depth = 1 then bump samples key;
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                bump inclusive key
              end
          | Some _ | None -> ())
        slots

let report_samples () =
  let dump title tbl n =
    let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) all in
    Printf.printf "-- %s (%d samples) --\n" title !total_samples;
    List.iteri (fun i (k, v) -> if i < n then Printf.printf "%6d  %s\n" v k) sorted
  in
  dump "self" samples 40;
  dump "inclusive" inclusive 30

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "rc" in
  let simsec =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 10.
  in
  let sampling = Array.exists (String.equal "--sample") Sys.argv in
  if sampling then begin
    ignore (Sys.signal Sys.sigprof (Sys.Signal_handle record_sample));
    ignore
      (Unix.setitimer Unix.ITIMER_PROF
         { Unix.it_interval = 0.002; it_value = 0.002 })
  end;
  let system =
    match mode with
    | "unmodified" -> Experiments.Harness.Unmodified
    | "lrp" -> Experiments.Harness.Lrp_sys
    | "rc" -> Experiments.Harness.Rc_sys
    | m -> failwith ("profile: unknown mode " ^ m)
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Experiments.Exp_sweep.run ~warmup:(Simtime.ms 500)
      ~measure:(Simtime.span_scale simsec (Simtime.sec 1))
      { Experiments.Exp_sweep.system; clients = 16; seed = 1 }
  in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "%s: %d requests, %.3f s wall, %.4f s/simsec\n" mode
    r.Experiments.Exp_sweep.completed wall
    (wall /. (0.5 +. simsec));
  if sampling then report_samples ()
